"""Transports for the coordinator/worker protocol.

Two interchangeable ways to move :mod:`repro.distributed.wire` envelopes
between shard workers and a coordinator:

:class:`FileTransport`
    A drop-box directory (typically on a shared filesystem).  Each worker
    writes its message to a uniquely-named JSON file via an atomic
    write-to-temp-then-rename, so the coordinator — polling the directory —
    only ever observes complete messages.  No daemon, no ports, survives
    coordinator restarts; the natural choice for batch jobs and tests.
    For the round protocol the directory doubles as an **inbox/outbox
    pair**: workers drop round-tagged ``rmsg-*`` frames (inbox), the
    coordinator publishes ``bcast-*`` round-begin broadcasts (outbox) that
    every worker polls for.  All polling loops back off exponentially from
    ``poll_interval`` up to ``max_poll_interval``, resetting whenever a
    message actually arrives — idle waits cost little CPU, active bursts
    stay responsive.

:class:`SocketTransport` / :class:`SocketListener`
    TCP with length-prefixed JSON frames (see :mod:`repro.distributed.wire`).
    The one-shot shape: the coordinator owns a listening socket; each worker
    connects, sends one frame, and disconnects.  Workers retry the connect
    until the coordinator is up, so start order does not matter.

:class:`SocketSession` / :class:`SocketHub`
    The persistent shape for the round protocol: each worker holds one
    long-lived connection (:class:`SocketSession`) carrying many frames in
    both directions — periodic state deltas up, round-begin broadcasts
    down.  The coordinator side (:class:`SocketHub`) accepts every worker
    once, reads frames off each connection on a reader thread, and can
    broadcast to all connected workers.  A connection dropping mid-round
    fails the round immediately instead of waiting for the timeout.

:class:`ShmTransport` / :class:`ShmWorkerSession`
    The zero-copy same-host shape: drop-box control flow identical to
    :class:`FileTransport`, but the binary array buffers of each frame
    ship through a named ``multiprocessing.shared_memory`` segment
    instead of the file — the JSON envelope in the drop-box carries only
    a segment handle, and the coordinator maps the segment read-only and
    decodes straight out of it, no serialization round-trip.  Peers
    prove same-hostness against a coordinator beacon file; a worker on a
    different machine (or a frame with no binary buffers) transparently
    falls back to the inline file shape, so mixed fleets still merge.

Every collect path raises the single :class:`TransportTimeout` on expiry
(:data:`CollectTimeout` remains as a backwards-compatible alias) and
:class:`WorkerFailure` when a worker ships an ``error`` envelope.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import queue
import socket
import threading
import time
from typing import Callable, Dict, List, Set

from repro.distributed.wire import (
    COORDINATOR_ID,
    _attach_buffers,
    _buffer_sizes,
    _lift_buffers,
    dumps_frame,
    loads_frame,
    recv_frame,
    send_frame,
    validate_message,
)

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    resource_tracker = None
    shared_memory = None


class WorkerFailure(RuntimeError):
    """A worker shipped an ``error`` envelope (or died mid-round) instead
    of completing its state."""


class TransportTimeout(TimeoutError):
    """A transport wait (collect, broadcast poll, connect) expired.  Both
    transports raise exactly this class, so callers handle stragglers
    uniformly regardless of deployment shape."""


#: Backwards-compatible alias (the pre-round-protocol exception name).
CollectTimeout = TransportTimeout


class _Backoff:
    """Exponential poll back-off: sleep intervals grow by ``factor`` from
    ``initial`` up to ``maximum``; :meth:`reset` after any progress."""

    def __init__(self, initial: float, maximum: float, factor: float = 2.0):
        self.initial = max(float(initial), 1e-4)
        self.maximum = max(float(maximum), self.initial)
        self.factor = max(float(factor), 1.0)
        self.current = self.initial

    def reset(self) -> None:
        self.current = self.initial

    def sleep(self, remaining: float | None = None) -> None:
        interval = self.current
        if remaining is not None:
            interval = max(min(interval, remaining), 0.0)
        time.sleep(interval)
        self.current = min(self.current * self.factor, self.maximum)


class RoundTracker:
    """Round bookkeeping shared by both transports' ``collect_round``:
    which workers have which delta frames, who has declared round-end,
    and the protocol checks — duplicate frames and frames from a *future*
    round raise ``ValueError``; frames from a past round are counted as
    stale and dropped (a straggler retransmit must not corrupt the current
    round); ``delta_skipped`` heartbeats occupy their ``seq`` slot (so
    frame accounting stays exact) without offering anything to merge;
    ``error`` envelopes raise :class:`WorkerFailure` immediately."""

    def __init__(self, round_id: int, expected: int):
        self.round_id = int(round_id)
        self.expected = int(expected)
        self.frames: Dict[int, Set[int]] = {}
        self.ends: Dict[int, int] = {}
        self.stale = 0
        self.skipped = 0

    def offer(self, message: dict) -> str:
        """Feed one envelope; returns ``"delta"`` when the caller should
        merge the frame, ``"end"`` / ``"skip"`` / ``"stale"`` otherwise."""
        kind = message["type"]
        if kind == "error":
            raise WorkerFailure(
                f"worker {message['worker']} failed in round "
                f"{message.get('round', '?')}: {message.get('detail', '?')}"
            )
        if kind not in ("delta", "delta_skipped", "round_end"):
            raise ValueError(
                f"unexpected {kind!r} message during round {self.round_id}"
            )
        round_id = message["round"]
        if round_id < self.round_id:
            self.stale += 1
            return "stale"
        if round_id > self.round_id:
            raise ValueError(
                f"frame from future round {round_id} during round "
                f"{self.round_id} (worker {message['worker']})"
            )
        worker = message["worker"]
        if kind in ("delta", "delta_skipped"):
            seen = self.frames.setdefault(worker, set())
            seq = message["seq"]
            if seq in seen:
                raise ValueError(
                    f"duplicate delta frame (round {round_id}, worker "
                    f"{worker}, seq {seq})"
                )
            seen.add(seq)
            if kind == "delta_skipped":
                self.skipped += 1
                return "skip"
            return "delta"
        if worker in self.ends:
            raise ValueError(
                f"duplicate round_end (round {round_id}, worker {worker})"
            )
        self.ends[worker] = message["frames"]
        return "end"

    def worker_complete(self, worker: int) -> bool:
        frames = self.ends.get(worker)
        return frames is not None and len(self.frames.get(worker, ())) >= frames

    def complete(self) -> bool:
        if len(self.ends) < self.expected:
            return False
        return all(self.worker_complete(worker) for worker in self.ends)

    def missing(self) -> List[int]:
        """Straggler report: worker ids (by the 0..expected-1 convention)
        that have not completed the round."""
        return [w for w in range(self.expected) if not self.worker_complete(w)]

    def summary(self) -> dict:
        return {
            "round": self.round_id,
            "workers": sorted(self.ends),
            "frames": {w: len(s) for w, s in sorted(self.frames.items())},
            "stale": self.stale,
            "skipped": self.skipped,
        }


def _check_collected(messages: List[dict]) -> List[dict]:
    """Shared post-processing: fail on any error envelope, reject duplicate
    worker ids, and return state messages sorted by worker id (a canonical
    merge order, so coordinator results do not depend on arrival order)."""
    for message in messages:
        if message["type"] == "error":
            raise WorkerFailure(
                f"worker {message['worker']} failed: {message.get('detail', '?')}"
            )
    by_worker = {}
    for message in messages:
        worker = message["worker"]
        if worker in by_worker:
            raise ValueError(f"duplicate state from worker {worker}")
        by_worker[worker] = message
    return [by_worker[worker] for worker in sorted(by_worker)]


# ------------------------------------------------------------ file drop-box

class FileTransport:
    """Drop-box directory transport (both endpoints, both protocols).

    Parameters
    ----------
    directory:
        The rendezvous directory; created on first use.  Workers and the
        coordinator must point at the same path (typically on a shared
        filesystem for real cross-machine runs).
    poll_interval:
        Initial polling period in seconds; every idle poll doubles it (see
        ``backoff``) so long waits do not busy-spin.
    max_poll_interval:
        Back-off ceiling in seconds.
    backoff:
        Multiplier applied to the poll interval after each idle poll;
        progress (a new message) resets the interval to ``poll_interval``.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        poll_interval: float = 0.02,
        max_poll_interval: float = 0.5,
        backoff: float = 2.0,
    ):
        self.directory = pathlib.Path(directory)
        self.poll_interval = float(poll_interval)
        self.max_poll_interval = float(max_poll_interval)
        self.backoff = float(backoff)
        self._round_parsed: Set[str] = set()

    def _backoff(self) -> _Backoff:
        return _Backoff(self.poll_interval, self.max_poll_interval, self.backoff)

    def _message_path(self, worker: int) -> pathlib.Path:
        return self.directory / f"msg-{int(worker):04d}.json"

    def _round_path(self, message: dict) -> pathlib.Path:
        kind = message["type"]
        worker = int(message["worker"])
        round_id = int(message.get("round", 0))
        if kind in ("delta", "delta_skipped"):
            # A skipped frame occupies the same (round, worker, seq) name a
            # real delta would, so retransmits still overwrite themselves.
            name = f"rmsg-{round_id:03d}-w{worker:04d}-d{message['seq']:06d}.json"
        elif kind == "round_end":
            name = f"rmsg-{round_id:03d}-w{worker:04d}-end.json"
        else:  # error
            name = f"rmsg-{round_id:03d}-w{worker:04d}-err.json"
        return self.directory / name

    def _broadcast_path(self, round_id: int) -> pathlib.Path:
        return self.directory / f"bcast-{int(round_id):03d}.json"

    def _publish(self, path: pathlib.Path, message: dict) -> None:
        """Atomic publish: write ``*.tmp``, then rename.  POSIX rename is
        atomic within a filesystem, so a polling peer never reads a
        half-written message."""
        validate_message(message)
        self._write_atomic(path, dumps_frame(message))

    def _write_atomic(self, path: pathlib.Path, payload: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(".json.tmp")
        temp.write_bytes(payload)
        try:
            temp.replace(path)
        except FileNotFoundError:
            # Round-boundary GC unlinked the tmp under us — only possible
            # for a frame whose round already completed (a stale
            # retransmit), which the tracker would drop anyway.
            pass

    def _load(self, path: pathlib.Path) -> dict:
        """Read one published frame file back into an envelope — the
        single read-side hook subclasses override to resolve out-of-band
        payloads (see :class:`ShmTransport`)."""
        return loads_frame(path.read_bytes())

    # ---------------------------------------------------------- worker side

    def send(self, message: dict) -> None:
        """Publish a one-shot envelope (``state`` / ``error``)."""
        self._publish(self._message_path(message["worker"]), message)

    def send_round(self, message: dict) -> None:
        """Publish a round-protocol envelope (``delta`` / ``round_end`` /
        round-tagged ``error``) under a name unique per (round, worker,
        frame) — a retransmit overwrites its own file, so the file
        transport deduplicates frames by construction."""
        self._publish(self._round_path(message), message)

    def wait_broadcast(self, round_id: int, timeout: float = 120.0) -> dict:
        """Worker side: poll (with back-off) for the coordinator's
        ``round_begin`` broadcast opening ``round_id``."""
        deadline = time.monotonic() + timeout
        backoff = self._backoff()
        path = self._broadcast_path(round_id)
        while True:
            if path.is_file():
                return self._load(path)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"file transport: no round-{round_id} broadcast in "
                    f"{self.directory} after {timeout:.0f}s"
                )
            backoff.sleep(remaining)

    # ----------------------------------------------------- coordinator side

    def pending(self) -> List[dict]:
        """All complete one-shot messages currently in the drop-box."""
        if not self.directory.is_dir():
            return []
        messages = []
        for path in sorted(self.directory.glob("msg-*.json")):
            messages.append(self._load(path))
        return messages

    def collect(self, expected: int, timeout: float = 60.0) -> List[dict]:
        """Poll until ``expected`` distinct workers have reported (or one
        reported an error); returns state envelopes sorted by worker id.

        Messages are immutable once atomically renamed into place, so each
        file is parsed exactly once however long the polling lasts — a
        straggler worker does not make the coordinator re-parse the large
        states that already arrived on every poll tick.
        """
        deadline = time.monotonic() + timeout
        backoff = self._backoff()
        parsed: dict[str, dict] = {}
        while True:
            progressed = False
            if self.directory.is_dir():
                for path in sorted(self.directory.glob("msg-*.json")):
                    if path.name not in parsed:
                        parsed[path.name] = self._load(path)
                        progressed = True
            messages = list(parsed.values())
            if any(m["type"] == "error" for m in messages):
                return _check_collected(messages)  # raises WorkerFailure
            if len({m["worker"] for m in messages}) >= expected:
                return _check_collected(messages)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"file transport: {len(messages)}/{expected} worker "
                    f"states in {self.directory} after {timeout:.0f}s"
                )
            if progressed:
                backoff.reset()
            backoff.sleep(remaining)

    def collect_round(
        self,
        round_id: int,
        expected: int,
        timeout: float = 120.0,
        on_state: Callable[[dict], None] = lambda message: None,
    ) -> dict:
        """Poll until ``expected`` workers have completed ``round_id``
        (every delta frame present plus the ``round_end``), invoking
        ``on_state`` on each new delta frame as it lands — the streaming
        merge hook.  Returns the round summary dict.  Stale frames (from a
        past round) are dropped and counted; duplicates and future-round
        frames raise ``ValueError``; a worker ``error`` raises
        :class:`WorkerFailure`; expiry raises :class:`TransportTimeout`
        naming the stragglers."""
        tracker = RoundTracker(round_id, expected)
        deadline = time.monotonic() + timeout
        backoff = self._backoff()
        while True:
            progressed = False
            if self.directory.is_dir():
                for path in sorted(self.directory.glob("rmsg-*.json")):
                    if path.name in self._round_parsed:
                        continue
                    message = self._load(path)
                    self._round_parsed.add(path.name)
                    progressed = True
                    if tracker.offer(message) == "delta":
                        on_state(message)
            if tracker.complete():
                self._gc_round(round_id)
                return tracker.summary()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"file transport: round {round_id} incomplete after "
                    f"{timeout:.0f}s (stragglers: workers {tracker.missing()})"
                )
            if progressed:
                backoff.reset()
            backoff.sleep(remaining)

    def publish_broadcast(self, message: dict) -> None:
        """Coordinator side: publish a ``round_begin`` broadcast for every
        worker to pick up via :meth:`wait_broadcast`."""
        self._publish(self._broadcast_path(message["round"]), message)

    @staticmethod
    def _frame_round(name: str) -> int:
        """The round id encoded in an ``rmsg-RRR-*`` / ``bcast-RRR`` file
        name (0 when the name does not parse — never collected)."""
        try:
            return int(name.split("-")[1].split(".")[0])
        except (IndexError, ValueError):  # pragma: no cover - foreign files
            return 0

    def _gc_round(self, round_id: int) -> None:
        """Garbage-collect a completed round: every ``rmsg-*`` frame and
        ``bcast-*`` broadcast tagged with this round or earlier has been
        consumed by everyone who will ever read it (a broadcast for round
        R is read by each worker *before* it ships its round-R frames, so
        round-R completion proves full consumption).  Without this, long
        streaming sessions accumulate one file per delta frame per round
        forever.  A straggler retransmit recreating a collected name later
        is re-read and dropped as stale by :class:`RoundTracker`.

        ``*.json.tmp`` debris for collected rounds is swept too: a worker
        killed mid-publish leaves its half-written temp file orphaned
        forever (nothing will ever rename it), and a *live* writer losing
        its tmp to this sweep just drops the frame — harmless, because
        only frames of already-completed rounds are swept and those would
        be dropped as stale anyway."""
        if not self.directory.is_dir():
            return
        for pattern in (
            "rmsg-*.json", "bcast-*.json",
            "rmsg-*.json.tmp", "bcast-*.json.tmp",
        ):
            for path in self.directory.glob(pattern):
                if 1 <= self._frame_round(path.name) <= round_id:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - concurrent unlink
                        continue
                    self._round_parsed.discard(path.name)

    def purge(self) -> None:
        """Delete all drop-box messages — one-shot, round frames, and
        broadcasts alike (between runs on a reused dir)."""
        if self.directory.is_dir():
            for pattern in ("msg-*.json*", "rmsg-*.json*", "bcast-*.json*"):
                for path in self.directory.glob(pattern):
                    path.unlink()
        self._round_parsed.clear()

    def purge_broadcasts(self) -> None:
        """Delete leftover ``bcast-*`` files only.  A round coordinator
        starting up has not broadcast anything yet, so any broadcast file
        is debris from a previous run on a reused rendezvous dir — and
        would wrongly advance freshly-started workers to a past run's
        round 2.  Worker frames are left alone: workers may legitimately
        publish before the coordinator starts."""
        if self.directory.is_dir():
            for path in self.directory.glob("bcast-*.json*"):
                path.unlink()


class FileWorkerSession:
    """Worker-side session facade over a :class:`FileTransport` directory:
    the same ``send`` / ``recv_broadcast`` surface as
    :class:`SocketSession`, so the round protocol is transport-agnostic.
    Picklable (plain paths and floats), so process-hosted workers can carry
    it across the process boundary."""

    def __init__(self, directory: str | pathlib.Path, **transport_kwargs):
        self._transport = FileTransport(directory, **transport_kwargs)

    def send(self, message: dict) -> None:
        if (
            message["type"] in ("delta", "delta_skipped", "round_end")
            or "round" in message
        ):
            self._transport.send_round(message)
        else:
            self._transport.send(message)

    def recv_broadcast(self, round_id: int, timeout: float = 120.0) -> dict:
        return self._transport.wait_broadcast(round_id, timeout)

    def close(self) -> None:  # symmetry with SocketSession
        pass


# ------------------------------------------------- shared-memory zero-copy

def host_token() -> str:
    """An identity string two processes share exactly when they run on
    the same machine *since the same boot* (hostname alone survives
    reboots and clones; the boot id does not)."""
    boot = ""
    try:
        boot = (
            pathlib.Path("/proc/sys/kernel/random/boot_id")
            .read_text()
            .strip()
        )
    except OSError:  # pragma: no cover - non-Linux hosts
        pass
    return f"{socket.gethostname()}:{boot}"


def _untrack_segment(name: str) -> None:
    """Opt a segment out of the per-process resource tracker.  Python
    (< 3.13) registers every attach unconditionally, so each worker exit
    would otherwise unlink segments the coordinator still reads and spam
    leak warnings; this transport owns segment lifetime explicitly
    (coordinator GC at round boundaries, :meth:`ShmTransport.purge`)."""
    if resource_tracker is None:  # pragma: no cover - no shm support
        return
    try:
        resource_tracker.unregister(name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def _tracked_unlink(segment) -> None:
    """Unlink with level tracker books: every attach untracked itself
    immediately, but ``SharedMemory.unlink()`` sends its own unregister —
    so re-register just before, and the pair cancels.  (An unmatched
    unregister makes the tracker process print a KeyError traceback.)"""
    if resource_tracker is not None:
        try:
            resource_tracker.register(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass
    try:
        segment.unlink()
    except (OSError, ValueError):
        # Concurrently unlinked: unlink raised before sending its
        # unregister, so take the re-registration back out.
        _untrack_segment(segment._name)


class ShmTransport(FileTransport):
    """Same-host zero-copy drop-box: :class:`FileTransport` control flow
    with binary buffers shipped through named shared-memory segments.

    The drop-box file for a frame carrying binary-codec arrays holds only
    the JSON header (buffers lifted out, exactly as the socket transport's
    binary frames do) plus a ``"shm_segment"`` handle; the buffer bytes
    live in one ``multiprocessing.shared_memory`` segment per frame.  The
    coordinator maps the segment and decodes arrays *directly out of the
    mapping* — no base64, no JSON array parsing, no copy until the final
    ``np.frombuffer(...).astype`` materializes the mutable array.

    Same-host proof: the coordinator :meth:`announce`\\ s a beacon file
    carrying its :func:`host_token`; a sender only uses shared memory
    once it has seen a matching beacon, and falls back to the inline file
    shape otherwise (different machine, beacon not yet written, frame
    with no binary buffers, or ``/dev/shm`` creation failure).  Readers
    accept both shapes per file, so mixed fleets merge fine.

    Segment lifetime: writers create, fill, and close (never unlink);
    the coordinator unlinks at round boundaries (:meth:`_gc_round` — by
    *name pattern*, so segments orphaned by a killed worker die too) and
    on :meth:`purge`.  Every attach is unregistered from the resource
    tracker, which double-frees otherwise (see :func:`_untrack_segment`).
    """

    BEACON = "shm-host.json"

    def __init__(self, directory, **kwargs):
        super().__init__(directory, **kwargs)
        digest = hashlib.sha256(
            str(pathlib.Path(directory).resolve()).encode("utf-8")
        ).hexdigest()[:8]
        #: Segment-name prefix unique to this rendezvous directory, so
        #: concurrent runs never collide and GC can glob safely.
        self.segment_prefix = f"rps{digest}"
        self._segments: Dict[str, object] = {}
        self._deferred: List[object] = []
        self._shm_peer: bool | None = None

    # Sessions pickle their transport into process-hosted workers; open
    # segment handles stay behind (they are per-process resources).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_segments"] = {}
        state["_deferred"] = []
        return state

    # ------------------------------------------------------------ same-host

    def announce(self) -> None:
        """Coordinator side: publish the beacon workers check before
        shipping through shared memory."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"token": host_token()}).encode("utf-8")
        temp = self.directory / (self.BEACON + ".tmp")
        temp.write_bytes(payload)
        temp.replace(self.directory / self.BEACON)

    def _same_host(self) -> bool:
        """Whether a coordinator beacon proves same-hostness.  Matches
        and mismatches are cached; an *absent* beacon is re-checked per
        send, so a worker that starts before the coordinator upgrades to
        shared memory the moment the beacon lands."""
        if self._shm_peer is not None:
            return self._shm_peer
        if shared_memory is None:  # pragma: no cover - no shm support
            self._shm_peer = False
            return False
        try:
            beacon = json.loads(
                (self.directory / self.BEACON).read_text()
            )
        except (OSError, ValueError):
            return False
        self._shm_peer = beacon.get("token") == host_token()
        return self._shm_peer

    # ------------------------------------------------------------ write side

    def _segment_name(self, path: pathlib.Path) -> str:
        return f"{self.segment_prefix}-{path.name.removesuffix('.json')}"

    def _publish(self, path: pathlib.Path, message: dict) -> None:
        validate_message(message)
        buffers: list = []
        header = _lift_buffers(message, buffers)
        if not buffers or not self._same_host():
            self._write_atomic(path, dumps_frame(message))
            return
        name = self._segment_name(path)
        segment = self._create_segment(
            name, max(sum(len(b) for b in buffers), 1)
        )
        if segment is None:  # /dev/shm unavailable or full: inline
            self._write_atomic(path, dumps_frame(message))
            return
        offset = 0
        for buf in buffers:
            segment.buf[offset : offset + len(buf)] = buf
            offset += len(buf)
        segment.close()
        header["shm_segment"] = name
        self._write_atomic(
            path, json.dumps(header, separators=(",", ":")).encode("utf-8")
        )

    def _create_segment(self, name: str, size: int):
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:
            # A retransmit of the same frame name: replace the segment,
            # mirroring how a frame file overwrites itself.
            self._unlink_segment(name)
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except OSError:  # pragma: no cover - racing creators
                return None
        except (OSError, ValueError):  # pragma: no cover - shm exhausted
            return None
        _untrack_segment(segment._name)
        return segment

    # ------------------------------------------------------------- read side

    def _load(self, path: pathlib.Path) -> dict:
        data = path.read_bytes()
        if not data.startswith(b"{"):
            return loads_frame(data)
        header = json.loads(data.decode("utf-8"))
        name = header.pop("shm_segment", None)
        if name is None:
            return loads_frame(data)
        segment = shared_memory.SharedMemory(name=name)
        _untrack_segment(segment._name)
        views, offset = [], 0
        for nbytes in _buffer_sizes(header):
            views.append(segment.buf[offset : offset + nbytes])
            offset += nbytes
        message = validate_message(_attach_buffers(header, views))
        self._segments[name] = segment
        return message

    # ------------------------------------------------------------ lifecycle

    def _unlink_segment(self, name: str) -> None:
        """Unlink one segment by name (and close our mapping of it, when
        decoding finished with the buffers; a mapping with live views
        defers its close but the name still dies now, so ``/dev/shm``
        never leaks)."""
        segment = self._segments.pop(name, None)
        if segment is None:
            if shared_memory is None:  # pragma: no cover - no shm support
                return
            try:
                segment = shared_memory.SharedMemory(name=name)
            except (OSError, ValueError):
                return  # never created, or already unlinked
            _untrack_segment(segment._name)
        _tracked_unlink(segment)
        try:
            segment.close()
        except BufferError:
            self._deferred.append(segment)

    def _close_deferred(self) -> None:
        still_live = []
        for segment in self._deferred:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views still exported
                still_live.append(segment)
        self._deferred = still_live

    def _segment_files(self) -> List[pathlib.Path]:
        """This rendezvous's segments currently present on the host, by
        name pattern — including ones orphaned by killed workers whose
        frame file never landed."""
        shm_dir = pathlib.Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux hosts
            return []
        return list(shm_dir.glob(f"{self.segment_prefix}-*"))

    def _gc_round(self, round_id: int) -> None:
        super()._gc_round(round_id)
        self._close_deferred()
        for path in self._segment_files():
            stem = path.name[len(self.segment_prefix) + 1 :]
            if stem.startswith(("rmsg-", "bcast-")) and (
                1 <= self._frame_round(stem) <= round_id
            ):
                self._unlink_segment(path.name)

    def purge(self) -> None:
        super().purge()
        for name in list(self._segments):
            self._unlink_segment(name)
        for path in self._segment_files():
            self._unlink_segment(path.name)
        self._close_deferred()
        try:
            (self.directory / self.BEACON).unlink()
        except OSError:
            pass
        self._shm_peer = None


class ShmWorkerSession(FileWorkerSession):
    """Worker-side session facade over a :class:`ShmTransport` — the
    ``send`` / ``recv_broadcast`` surface of :class:`FileWorkerSession`
    with buffers travelling through shared memory when the coordinator's
    beacon proves same-hostness."""

    def __init__(self, directory: str | pathlib.Path, **transport_kwargs):
        self._transport = ShmTransport(directory, **transport_kwargs)


# ------------------------------------------------------------- TCP sockets

class SocketTransport:
    """Worker-side one-shot TCP sender: connect, ship one frame, disconnect.

    Connecting retries until ``connect_timeout`` elapses, so workers may
    start before the coordinator is listening.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 30.0,
        retry_interval: float = 0.05,
    ):
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.retry_interval = float(retry_interval)

    def send(self, message: dict) -> None:
        validate_message(message)
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                ) as sock:
                    send_frame(sock, message)
                return
            except OSError as exc:
                # Covers refused, host/net unreachable, and connect
                # timeouts alike — all transient while the coordinator
                # host is still coming up, which is exactly the window
                # the retry loop exists for.
                if time.monotonic() >= deadline:
                    raise TransportTimeout(
                        f"socket transport: could not deliver to "
                        f"coordinator at {self.host}:{self.port} within "
                        f"{self.connect_timeout:.0f}s ({exc})"
                    ) from exc
                time.sleep(self.retry_interval)


def _connect_with_retry(
    host: str, port: int, connect_timeout: float, retry_interval: float
) -> socket.socket:
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise TransportTimeout(
                    f"socket transport: could not connect to coordinator at "
                    f"{host}:{port} within {connect_timeout:.0f}s ({exc})"
                ) from exc
            time.sleep(retry_interval)


class SocketSession:
    """Worker-side persistent TCP session: one long-lived connection
    carrying many frames in both directions — delta frames and round-ends
    up to the coordinator, round-begin broadcasts back down.  Connecting
    retries like :class:`SocketTransport`, so start order does not
    matter."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 30.0,
        retry_interval: float = 0.05,
    ):
        self.host = host
        self.port = int(port)
        self._sock = _connect_with_retry(
            host, self.port, float(connect_timeout), float(retry_interval)
        )

    def send(self, message: dict) -> None:
        validate_message(message)
        send_frame(self._sock, message)

    def recv(self, timeout: float = 120.0) -> dict:
        """Read the next frame from the coordinator."""
        self._sock.settimeout(max(float(timeout), 1e-3))
        try:
            return recv_frame(self._sock)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"socket session: no frame from coordinator at "
                f"{self.host}:{self.port} within {timeout:.0f}s"
            ) from exc
        finally:
            self._sock.settimeout(None)

    def recv_broadcast(self, round_id: int, timeout: float = 120.0) -> dict:
        """Read the ``round_begin`` broadcast for ``round_id`` (any other
        frame here is a protocol violation and raises)."""
        message = self.recv(timeout)
        if message["type"] != "round_begin":
            raise ValueError(
                f"expected round_begin broadcast, got {message['type']!r}"
            )
        if message["round"] != round_id:
            raise ValueError(
                f"expected round-{round_id} broadcast, got round "
                f"{message['round']}"
            )
        return message

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass

    def __enter__(self) -> "SocketSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SocketListener:
    """Coordinator-side one-shot TCP receiver.

    Binds immediately (``port=0`` picks an ephemeral port — read
    :attr:`address` to learn it), accepts one connection per worker
    message.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — what workers should dial."""
        host, port = self._sock.getsockname()[:2]
        return host, port

    def collect(self, expected: int, timeout: float = 60.0) -> List[dict]:
        """Accept connections until ``expected`` distinct workers have
        shipped a state frame; returns envelopes sorted by worker id."""
        deadline = time.monotonic() + timeout
        messages: List[dict] = []
        while len({m["worker"] for m in messages}) < expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"socket transport: {len(messages)}/{expected} worker "
                    f"states on {self.address} after {timeout:.0f}s"
                )
            self._sock.settimeout(remaining)
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            with conn:
                conn.settimeout(max(remaining, 1.0))
                message = recv_frame(conn)
            if message["type"] == "error":
                raise WorkerFailure(
                    f"worker {message['worker']} failed: "
                    f"{message.get('detail', '?')}"
                )
            messages.append(message)
        return _check_collected(messages)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SocketHub:
    """Coordinator-side persistent TCP endpoint for the round protocol.

    Accepts one long-lived connection per worker (an accept thread plus a
    reader thread per connection feed an internal event queue), exposes
    :meth:`collect_round` (streaming-merge collection with the same
    :class:`RoundTracker` semantics as the file transport) and
    :meth:`broadcast` (push a frame to every connected worker).  A
    connection dropping before its worker completed the current round
    raises :class:`WorkerFailure` immediately — crashes fail the round
    fast instead of burning the timeout.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._conns: Dict[int, socket.socket] = {}
        self._dead: Set[int] = set()
        self._lock = threading.Lock()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-hub-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — what workers should dial."""
        host, port = self._sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------- reader threads

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.1)
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._reader, args=(conn,), name="repro-hub-reader",
                daemon=True,
            ).start()

    def _reader(self, conn: socket.socket) -> None:
        worker: int | None = None
        try:
            while True:
                message = recv_frame(conn)
                sender = message.get("worker")
                if worker is None and isinstance(sender, int) and sender >= 0:
                    worker = sender
                    with self._lock:
                        self._conns[worker] = conn
                self._events.put(("message", message, None))
        except (ConnectionError, OSError, ValueError) as exc:
            if worker is not None:
                with self._lock:
                    self._conns.pop(worker, None)
                    self._dead.add(worker)
            self._events.put(("eof", worker, f"{type(exc).__name__}: {exc}"))
            try:
                conn.close()
            except OSError:  # pragma: no cover - close races are benign
                pass

    # --------------------------------------------------------- coordinator

    def collect_round(
        self,
        round_id: int,
        expected: int,
        timeout: float = 120.0,
        on_state: Callable[[dict], None] = lambda message: None,
    ) -> dict:
        """Consume frames until ``expected`` workers have completed
        ``round_id``, invoking ``on_state`` on each delta frame as it
        arrives (the streaming merge hook).  Semantics mirror
        :meth:`FileTransport.collect_round` — stale frames dropped and
        counted, duplicates and future rounds raise, worker errors or
        mid-round disconnects raise :class:`WorkerFailure`, expiry raises
        :class:`TransportTimeout` naming the stragglers."""
        tracker = RoundTracker(round_id, expected)
        deadline = time.monotonic() + timeout
        while not tracker.complete():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"socket transport: round {round_id} incomplete on "
                    f"{self.address} after {timeout:.0f}s (stragglers: "
                    f"workers {tracker.missing()})"
                )
            try:
                event, payload, detail = self._events.get(
                    timeout=min(remaining, 0.1)
                )
            except queue.Empty:
                continue
            if event == "message":
                if tracker.offer(payload) == "delta":
                    on_state(payload)
            else:  # eof
                worker = payload
                if worker is not None and not tracker.worker_complete(worker):
                    raise WorkerFailure(
                        f"worker {worker} disconnected mid-round {round_id} "
                        f"({detail})"
                    )
                # A completed (or never-identified) peer closing is normal.
        return tracker.summary()

    def broadcast(self, message: dict) -> int:
        """Send ``message`` to every connected worker; returns how many
        workers it reached.  A worker whose session already dropped cannot
        take part in the round the broadcast opens, so any known-dead
        worker fails the broadcast immediately."""
        if message.get("worker") != COORDINATOR_ID:
            raise ValueError("broadcasts must originate from the coordinator")
        validate_message(message)
        with self._lock:
            if self._dead:
                raise WorkerFailure(
                    f"workers {sorted(self._dead)} disconnected before the "
                    "broadcast"
                )
            conns = dict(self._conns)
        reached = 0
        for worker, conn in sorted(conns.items()):
            try:
                send_frame(conn, message)
                reached += 1
            except OSError as exc:
                raise WorkerFailure(
                    f"worker {worker} unreachable for broadcast ({exc})"
                ) from exc
        return reached

    # The coordinator-channel surface shared with FileTransport.
    publish_broadcast = broadcast

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close races are benign
                pass

    def __enter__(self) -> "SocketHub":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
