"""The distributed wire protocol: message envelopes and socket framing.

Everything that crosses a machine boundary is one JSON document — the same
wire format the mergeable-sketch protocol already speaks
(:meth:`~repro.sketch.base.MergeableSketch.to_state`), wrapped in a small
envelope that names the sender and the message kind:

.. code-block:: json

    {"format": "repro-dist", "version": 1, "type": "state",
     "worker": 2, "state": { ...to_state() dict... }}

Message types:

``state``
    A worker's finished shard state (the one-shot protocol).  ``state`` is
    the sketch's ``to_state()`` dict, whose embedded compatibility digest
    is what lets the coordinator reject a worker built with the wrong
    configuration or seed *before* merging anything.
``error``
    A worker announcing failure (``detail`` carries the reason) so the
    coordinator can stop waiting instead of timing out.  May carry a
    ``round`` tag in round-protocol sessions.
``delta``
    One incremental state frame of the **round protocol**: the
    ``to_state()`` of a fresh sibling that ingested only the updates since
    the previous frame.  Tagged with ``round`` and a per-worker ``seq``
    number; because sketch states are linear, merging the delta frames in
    any order reproduces the batch merge bit for bit.
``round_end``
    A worker declaring its round finished: ``frames`` says how many delta
    frames it shipped, so the coordinator can detect a lost frame instead
    of silently merging a partial partition.
``round_begin``
    Coordinator broadcast opening a round (sender ``worker`` is
    :data:`COORDINATOR_ID`).  For pass 2 of the two-pass protocol it
    carries the coordinator's ``compat`` digest (workers refuse a
    broadcast from a non-sibling) and the merged first-pass ``candidates``
    export that seeds every worker's second pass.  An optional ``codec``
    field advertises the coordinator's preferred state codec (session
    negotiation: workers without an explicit codec adopt it).

``delta_skipped``
    A lightweight heartbeat taking the place of a delta frame whose
    payload would have been an *empty* sketch (a streaming period that
    left the state untouched, or an empty partition).  It occupies the
    frame's ``seq`` slot so :class:`~repro.distributed.transport.RoundTracker`
    accounting stays exact, but ships no state and merges nothing —
    merging an empty sibling is the identity anyway.

Transports move these envelopes without looking inside: the file transport
writes one frame per file, the socket transport sends **length-prefixed
frames** — a 4-byte big-endian payload length followed by the frame bytes.
The prefix makes message recovery trivial on a stream socket (read 4
bytes, read exactly that many more) and caps frames at 2^32-1 bytes, far
above any realistic sketch state.

A frame's bytes come in two shapes, distinguished by the leading byte:

* **JSON frames** — the UTF-8 JSON document itself (always starts with
  ``{``).  States under the ``dense-json`` and ``sparse`` codecs, and
  ``binary``-codec states travelling through JSON-only channels, ride
  this way (binary buffers base64-embedded).
* **Binary frames** — :data:`BINARY_MAGIC` (an invalid UTF-8 start byte,
  so the two shapes can never be confused), a 4-byte big-endian header
  length, a JSON header, then the raw little-endian array buffers
  concatenated.  :func:`dumps_frame` lifts every ``binary``-codec array
  out of the envelope into the buffer section (replacing its ``"b64"``
  field with a ``"buffer"`` index), so the bytes ship unencoded — no
  base64 expansion, no JSON float parsing on the hot merge path.

Version-skew note: the wire version stays 1 — every envelope readable by
a pre-codec peer is unchanged — but the ``delta_skipped`` type and the
binary frame shape did not exist before the codec layer, so a coordinator
predating it rejects them (unknown message type / undecodable frame)
rather than merging wrongly.  In mixed-version fleets, upgrade the
coordinator first; workers on any codec (old or new) then interoperate,
because decoding is self-describing per value.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.sketch.codec import binary_payload_bytes

WIRE_FORMAT = "repro-dist"
WIRE_VERSION = 1

#: struct layout of the socket frame length prefix: 4-byte big-endian.
LENGTH_PREFIX = struct.Struct(">I")

#: First bytes of a binary wire frame.  0xAB is a UTF-8 continuation
#: byte, so no JSON document can begin with it.
BINARY_MAGIC = b"\xabRB1"

MESSAGE_TYPES = (
    "state", "error", "delta", "delta_skipped", "round_end", "round_begin",
)

#: The ``worker`` id coordinator-originated broadcasts carry.
COORDINATOR_ID = -1

#: Round numbering of the two-pass protocol (round 1 collects first-pass
#: states, round 2 collects the candidate-restricted second-pass states).
ROUND_FIRST_PASS = 1
ROUND_SECOND_PASS = 2


# --------------------------------------------------------------- envelopes

def state_message(worker: int, state: dict) -> dict:
    """Envelope for a worker's finished shard state (one-shot protocol)."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "state",
        "worker": int(worker),
        "state": state,
    }


def error_message(worker: int, detail: str, round_id: int | None = None) -> dict:
    """Envelope announcing a worker failure (optionally round-tagged)."""
    message = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "error",
        "worker": int(worker),
        "detail": str(detail),
    }
    if round_id is not None:
        message["round"] = int(round_id)
    return message


def delta_message(worker: int, round_id: int, seq: int, state: dict) -> dict:
    """Envelope for one incremental state frame of a round."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "delta",
        "worker": int(worker),
        "round": int(round_id),
        "seq": int(seq),
        "state": state,
    }


def delta_skipped_message(worker: int, round_id: int, seq: int) -> dict:
    """Envelope for a skipped (empty) delta frame: holds the ``seq`` slot
    for round accounting, ships no state."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "delta_skipped",
        "worker": int(worker),
        "round": int(round_id),
        "seq": int(seq),
    }


def round_end_message(worker: int, round_id: int, frames: int) -> dict:
    """Envelope closing a worker's round (``frames`` delta frames sent)."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "round_end",
        "worker": int(worker),
        "round": int(round_id),
        "frames": int(frames),
    }


def round_begin_message(
    round_id: int, compat: str, candidates=None, codec: str | None = None
) -> dict:
    """Coordinator broadcast opening a round; for the second pass it
    carries the merged candidate export and the coordinator's compat
    digest (the worker-side sibling check).  ``codec`` optionally
    advertises the coordinator's preferred state codec — the session-
    level negotiation hook: workers launched without an explicit codec
    adopt it for the frames this broadcast solicits."""
    message = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "round_begin",
        "worker": COORDINATOR_ID,
        "round": int(round_id),
        "compat": str(compat),
        "candidates": candidates,
    }
    if codec is not None:
        message["codec"] = str(codec)
    return message


def validate_message(message: dict) -> dict:
    """Check the envelope and return it; raise ``ValueError`` on anything
    that is not a well-formed repro-dist message."""
    if not isinstance(message, dict):
        raise ValueError(f"wire message must be a JSON object, got {type(message)}")
    if message.get("format") != WIRE_FORMAT:
        raise ValueError("not a repro-dist message")
    if message.get("version") != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {message.get('version')!r}")
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ValueError(f"unknown message type {kind!r}")
    if not isinstance(message.get("worker"), int):
        raise ValueError("wire message lacks an integer worker id")
    if kind in ("state", "delta") and not isinstance(message.get("state"), dict):
        raise ValueError(f"{kind} message lacks a state dict")
    if kind in ("delta", "delta_skipped", "round_end", "round_begin"):
        if not isinstance(message.get("round"), int) or message["round"] < 1:
            raise ValueError(f"{kind} message lacks a positive round id")
    if kind in ("delta", "delta_skipped") and (
        not isinstance(message.get("seq"), int) or message["seq"] < 0
    ):
        raise ValueError(f"{kind} message lacks a non-negative seq number")
    if kind == "round_end" and (
        not isinstance(message.get("frames"), int) or message["frames"] < 0
    ):
        raise ValueError("round_end message lacks a non-negative frame count")
    if kind == "round_begin":
        if not isinstance(message.get("compat"), str):
            raise ValueError("round_begin message lacks a compat digest")
        if "candidates" not in message:
            raise ValueError("round_begin message lacks a candidates field")
        if "codec" in message and not isinstance(message["codec"], str):
            raise ValueError("round_begin codec advertisement must be a string")
    return message


def dumps_message(message: dict) -> bytes:
    """Envelope -> canonical UTF-8 JSON bytes (no whitespace).  Binary-
    codec states stay base64-embedded; use :func:`dumps_frame` for the
    raw-buffer wire form."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def loads_message(data: bytes) -> dict:
    return validate_message(json.loads(data.decode("utf-8")))


# ----------------------------------------------------------- binary frames

def _is_binary_spec(value) -> bool:
    return (
        isinstance(value, dict)
        and value.get("codec") == "binary"
        and ("b64" in value or "raw" in value)
    )


def _lift_buffers(value, buffers: list):
    """Deep-copy ``value`` with every binary array spec's payload moved
    into ``buffers``; the spec keeps a ``"buffer"`` index and byte count
    in its place.  Non-buffer values are shared, not copied."""
    if _is_binary_spec(value):
        raw = binary_payload_bytes(value)
        spec = {k: v for k, v in value.items() if k not in ("b64", "raw")}
        spec["buffer"] = len(buffers)
        spec["nbytes"] = len(raw)
        buffers.append(raw)
        return spec
    if isinstance(value, dict):
        return {k: _lift_buffers(v, buffers) for k, v in value.items()}
    if isinstance(value, list):
        return [_lift_buffers(v, buffers) for v in value]
    return value


def _attach_buffers(value, buffers: list):
    """Inverse of :func:`_lift_buffers`: reattach each referenced buffer
    as a ``"raw"`` bytes field (the form ``decode_array`` consumes
    directly, skipping base64 entirely)."""
    if isinstance(value, dict):
        if value.get("codec") == "binary" and "buffer" in value:
            spec = {
                k: v for k, v in value.items() if k not in ("buffer", "nbytes")
            }
            spec["raw"] = buffers[value["buffer"]]
            return spec
        return {k: _attach_buffers(v, buffers) for k, v in value.items()}
    if isinstance(value, list):
        return [_attach_buffers(v, buffers) for v in value]
    return value


def dumps_frame(message: dict) -> bytes:
    """Envelope -> wire frame bytes.  Messages without binary-codec
    arrays serialize as plain JSON; messages carrying them become a
    binary frame — magic, header length, JSON header, raw buffers — so
    array bytes ship without base64 expansion."""
    buffers: list = []
    header = _lift_buffers(message, buffers)
    if not buffers:
        return dumps_message(message)
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [BINARY_MAGIC, LENGTH_PREFIX.pack(len(head)), head, *buffers]
    )


def loads_frame(data: bytes) -> dict:
    """Wire frame bytes -> validated envelope (either shape)."""
    if not data.startswith(BINARY_MAGIC):
        return loads_message(data)
    offset = len(BINARY_MAGIC)
    (head_len,) = LENGTH_PREFIX.unpack_from(data, offset)
    offset += LENGTH_PREFIX.size
    header = json.loads(data[offset : offset + head_len].decode("utf-8"))
    offset += head_len
    buffers = []
    cursor = offset
    for nbytes in _buffer_sizes(header):
        buffers.append(data[cursor : cursor + nbytes])
        cursor += nbytes
    if cursor != len(data):
        raise ValueError(
            f"binary frame length mismatch: {len(data) - cursor} trailing bytes"
        )
    return validate_message(_attach_buffers(header, buffers))


def _buffer_sizes(value, sizes: dict | None = None) -> list:
    """Byte counts of the buffer section, in buffer-index order."""
    if sizes is None:
        sizes = {}
        _buffer_sizes(value, sizes)
        return [sizes[i] for i in range(len(sizes))]
    if isinstance(value, dict):
        if value.get("codec") == "binary" and "buffer" in value:
            sizes[int(value["buffer"])] = int(value["nbytes"])
        else:
            for v in value.values():
                _buffer_sizes(v, sizes)
    elif isinstance(value, list):
        for v in value:
            _buffer_sizes(v, sizes)
    return []


# ----------------------------------------------------------- socket frames

def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one length-prefixed frame (JSON or binary) to a connected
    stream socket."""
    payload = dumps_frame(message)
    sock.sendall(LENGTH_PREFIX.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed frame (either shape) from a connected
    stream socket."""
    header = _recv_exact(sock, LENGTH_PREFIX.size)
    (length,) = LENGTH_PREFIX.unpack(header)
    return loads_frame(_recv_exact(sock, length))
