"""The distributed wire protocol: message envelopes and socket framing.

Everything that crosses a machine boundary is one JSON document — the same
wire format the mergeable-sketch protocol already speaks
(:meth:`~repro.sketch.base.MergeableSketch.to_state`), wrapped in a small
envelope that names the sender and the message kind:

.. code-block:: json

    {"format": "repro-dist", "version": 1, "type": "state",
     "worker": 2, "state": { ...to_state() dict... }}

Message types:

``state``
    A worker's finished shard state.  ``state`` is the sketch's
    ``to_state()`` dict, whose embedded compatibility digest is what lets
    the coordinator reject a worker built with the wrong configuration or
    seed *before* merging anything.
``error``
    A worker announcing failure (``detail`` carries the reason) so the
    coordinator can stop waiting instead of timing out.

Transports move these envelopes without looking inside: the file transport
writes one JSON file per message, the socket transport sends
**length-prefixed frames** — a 4-byte big-endian payload length followed by
the UTF-8 JSON bytes.  The prefix makes message recovery trivial on a
stream socket (read 4 bytes, read exactly that many more) and caps frames
at 2^32-1 bytes, far above any realistic sketch state.
"""

from __future__ import annotations

import json
import socket
import struct

WIRE_FORMAT = "repro-dist"
WIRE_VERSION = 1

#: struct layout of the socket frame length prefix: 4-byte big-endian.
LENGTH_PREFIX = struct.Struct(">I")

MESSAGE_TYPES = ("state", "error")


# --------------------------------------------------------------- envelopes

def state_message(worker: int, state: dict) -> dict:
    """Envelope for a worker's finished shard state."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "state",
        "worker": int(worker),
        "state": state,
    }


def error_message(worker: int, detail: str) -> dict:
    """Envelope announcing a worker failure."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "type": "error",
        "worker": int(worker),
        "detail": str(detail),
    }


def validate_message(message: dict) -> dict:
    """Check the envelope and return it; raise ``ValueError`` on anything
    that is not a well-formed repro-dist message."""
    if not isinstance(message, dict):
        raise ValueError(f"wire message must be a JSON object, got {type(message)}")
    if message.get("format") != WIRE_FORMAT:
        raise ValueError("not a repro-dist message")
    if message.get("version") != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {message.get('version')!r}")
    if message.get("type") not in MESSAGE_TYPES:
        raise ValueError(f"unknown message type {message.get('type')!r}")
    if not isinstance(message.get("worker"), int):
        raise ValueError("wire message lacks an integer worker id")
    if message["type"] == "state" and not isinstance(message.get("state"), dict):
        raise ValueError("state message lacks a state dict")
    return message


def dumps_message(message: dict) -> bytes:
    """Envelope -> canonical UTF-8 JSON bytes (no whitespace)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def loads_message(data: bytes) -> dict:
    return validate_message(json.loads(data.decode("utf-8")))


# ----------------------------------------------------------- socket frames

def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one length-prefixed JSON frame to a connected stream socket."""
    payload = dumps_message(message)
    sock.sendall(LENGTH_PREFIX.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed JSON frame from a connected stream socket."""
    header = _recv_exact(sock, LENGTH_PREFIX.size)
    (length,) = LENGTH_PREFIX.unpack(header)
    return loads_message(_recv_exact(sock, length))
