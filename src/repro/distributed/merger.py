"""Parallel merge pipeline: fold worker frames on a pool, not a thread.

The coordinator's original merge path was strictly serial — every frame
paid ``from_state`` (JSON/buffer decode) plus ``merge`` on the collector
thread, so at many workers the coordinator itself became the bottleneck
(the PR-4 follow-up this module closes).  :class:`MergePool` turns that
path into a **merge tree** with two backends:

``mode="thread"``
    Each submitted frame is decoded *and pre-merged* on a thread pool —
    an arriving sibling either becomes a new partial accumulator or folds
    into a free one, so up to ``workers`` partial merges run concurrently
    while frames are still landing (the streaming shape);
    :meth:`MergePool.drain` then reduces the partial accumulators
    pairwise (again on the pool) and folds the single survivor into the
    root sketch.  Decode and merge hold the GIL, so thread mode overlaps
    I/O waits but not CPU work.

``mode="process"``
    The GIL-free backend: a ``ProcessPoolExecutor`` whose children each
    hold one blank sibling template (shipped once at pool start through
    the picklable spec/registry machinery — see
    :mod:`repro.functions.registry`).  Submitted frames batch into
    groups; each group is pickled to a child, which decodes every state
    and pre-merges the group into **one** sketch that travels back as a
    pickled object (numpy arrays pickle as raw buffers — far cheaper
    than the JSON decode it displaces).  :meth:`MergePool.drain` folds
    the returned group partials into the root serially: at group size
    ``g`` the parent does ``frames / g`` object merges while the
    children soak up all ``frames`` decodes in parallel.

Exactness: sketch states are linear, so merges commute and associate —
for the integer-valued states this library ships, bit for bit (the same
invariance contract behind sharded ingestion, enforced for this module by
``tests/test_distributed.py``).  Any grouping of frames therefore yields
the root state serial merging would, which is what lets the tree pick its
grouping by arrival order and pool availability, in either mode.

The root structure is never mutated until :meth:`~MergePool.drain`; pool
tasks only *read* it (``from_state`` -> ``spawn_sibling`` + compat
check), so streaming submissions are safe while a round is open.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from threading import Lock
from typing import List

__all__ = ["MergePool", "merge_tree", "MERGE_MODES"]

#: The merge-pool backends: ``thread`` (GIL-shared, overlap-I/O) and
#: ``process`` (GIL-free pre-merging in child processes).
MERGE_MODES = ("thread", "process")

#: How many frames a process-mode dispatch groups together.  Larger
#: groups amortize pickling and inter-process transfer; smaller groups
#: start merging sooner.  Four keeps a 4-child pool busy from the fifth
#: frame on while still collapsing 4 decodes into one returned object.
DEFAULT_GROUP_FRAMES = 4

# Per-child sibling template for process mode, installed by the pool
# initializer.  Each child decodes states against its own copy, so the
# parent's root structure never crosses the process boundary after start.
_PROC_TEMPLATE = None


def _init_merge_process(template) -> None:
    global _PROC_TEMPLATE
    _PROC_TEMPLATE = template


def _premerge_group(states: List[dict]):
    """Child-side group fold: decode every state against the template and
    merge the group into one sketch, which pickles back to the parent
    along with the frame count it absorbed."""
    accumulator = None
    for state in states:
        sibling = _PROC_TEMPLATE.from_state(state)
        if accumulator is None:
            accumulator = sibling
        else:
            accumulator = accumulator.merge(sibling)
    return len(states), accumulator


def _freeze_raw(value):
    """Deep-copy ``value`` with every buffer-like field (``memoryview``
    from a shared-memory attach, ``bytearray``) frozen to ``bytes``, so
    states lifted off zero-copy transports survive pickling to a merge
    process.  Plain-bytes states pass through untouched (same object)."""
    if isinstance(value, (memoryview, bytearray)):
        return bytes(value)
    if isinstance(value, dict):
        return {k: _freeze_raw(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_freeze_raw(v) for v in value]
    return value


class MergePool:
    """A pool of mergers feeding one root sketch.

    Parameters
    ----------
    structure:
        The root sketch; submitted states must be sibling states.  Left
        untouched until :meth:`drain`.
    workers:
        Pool width (concurrent decode/merge tasks).  Must be >= 1; a
        width of 1 is the serial pipeline on one background worker.
    mode:
        ``"thread"`` (default) decodes/merges on a thread pool under the
        GIL; ``"process"`` ships frame groups to child processes that
        decode and pre-merge GIL-free (the structure must pickle — true
        for every sketch built from :mod:`repro.distributed.specs`).
    group_frames:
        Process mode only: frames per child dispatch (default
        :data:`DEFAULT_GROUP_FRAMES`).
    """

    def __init__(
        self,
        structure,
        workers: int = 2,
        mode: str = "thread",
        group_frames: int = DEFAULT_GROUP_FRAMES,
    ):
        if workers < 1:
            raise ValueError("merge workers must be positive")
        if mode not in MERGE_MODES:
            raise ValueError(
                f"merge mode must be one of {MERGE_MODES}, got {mode!r}"
            )
        self.structure = structure
        self.workers = int(workers)
        self.mode = mode
        self.group_frames = max(int(group_frames), 1)
        if mode == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_merge_process,
                initargs=(structure.spawn_sibling(),),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-merge"
            )
        self._lock = Lock()
        self._partials: List = []
        self._futures: List[Future] = []
        self._group: List[dict] = []
        self.merged_frames = 0

    # ------------------------------------------------------------- pipeline

    def submit(self, state: dict) -> None:
        """Queue one sibling state for decode + pre-merge on the pool."""
        if self.mode == "process":
            self._group.append(_freeze_raw(state))
            if len(self._group) >= self.group_frames:
                self._dispatch_group()
        else:
            self._futures.append(self._pool.submit(self._fold, state))

    def _dispatch_group(self) -> None:
        group, self._group = self._group, []
        if group:
            self._futures.append(self._pool.submit(_premerge_group, group))

    def _fold(self, state: dict) -> None:
        sibling = self.structure.from_state(state)
        with self._lock:
            acc = self._partials.pop() if self._partials else None
            self.merged_frames += 1
        if acc is not None:
            sibling = acc.merge(sibling)
        with self._lock:
            self._partials.append(sibling)

    def drain(self):
        """Wait for every queued frame, reduce the partial accumulators,
        fold the survivor(s) into the root, and return the root.  Errors
        from any pool task (a non-sibling state, a corrupt payload)
        re-raise here with their original tracebacks — the pool itself
        stays drainable, never deadlocked, after a poisoned frame."""
        if self.mode == "process":
            return self._drain_process()
        futures, self._futures = self._futures, []
        for future in futures:
            future.result()
        with self._lock:
            partials, self._partials = self._partials, []
        while len(partials) > 1:
            carry = [partials[-1]] if len(partials) % 2 else []
            merges = [
                self._pool.submit(partials[i].merge, partials[i + 1])
                for i in range(0, len(partials) - 1, 2)
            ]
            partials = [m.result() for m in merges] + carry
        if partials:
            self.structure.merge(partials[0])
        return self.structure

    def _drain_process(self):
        self._dispatch_group()
        futures, self._futures = self._futures, []
        failure = None
        for future in futures:
            try:
                frames, partial = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                # Keep consuming so the pool is quiescent before raising;
                # the first failure wins (deterministic in dispatch order).
                if failure is None:
                    failure = exc
                continue
            if failure is None and partial is not None:
                self.structure.merge(partial)
                self.merged_frames += frames
        if failure is not None:
            raise failure
        return self.structure

    # ---------------------------------------------------------------- admin

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MergePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def merge_tree(structure, states, workers: int = 2, mode: str = "thread"):
    """One-shot merge tree: decode and fold ``states`` (raw ``to_state``
    dicts) into ``structure`` through a :class:`MergePool` in ``mode``;
    returns ``structure``, bit-identical to folding the states serially."""
    with MergePool(structure, workers, mode=mode) as pool:
        for state in states:
            pool.submit(state)
        return pool.drain()
