"""Parallel merge pipeline: fold worker frames on a pool, not a thread.

The coordinator's original merge path was strictly serial — every frame
paid ``from_state`` (JSON/buffer decode) plus ``merge`` on the collector
thread, so at many workers the coordinator itself became the bottleneck
(the PR-4 follow-up this module closes).  :class:`MergePool` turns that
path into a **merge tree**:

* each submitted frame is decoded *and pre-merged* on a worker pool —
  an arriving sibling either becomes a new partial accumulator or folds
  into a free one, so up to ``workers`` partial merges run concurrently
  while frames are still landing (the streaming shape);
* :meth:`MergePool.drain` then reduces the partial accumulators pairwise
  (again on the pool) and folds the single survivor into the root sketch.

Exactness: sketch states are linear, so merges commute and associate —
for the integer-valued states this library ships, bit for bit (the same
invariance contract behind sharded ingestion, enforced for this module by
``tests/test_distributed.py``).  Any grouping of frames therefore yields
the root state serial merging would, which is what lets the tree pick its
grouping by arrival order and thread availability.

The root structure is never mutated until :meth:`~MergePool.drain`; pool
tasks only *read* it (``from_state`` -> ``spawn_sibling`` + compat
check), so streaming submissions are safe while a round is open.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from threading import Lock
from typing import List

__all__ = ["MergePool", "merge_tree"]


class MergePool:
    """A pool of mergers feeding one root sketch.

    Parameters
    ----------
    structure:
        The root sketch; submitted states must be sibling states.  Left
        untouched until :meth:`drain`.
    workers:
        Pool width (concurrent decode/merge tasks).  Must be >= 1; a
        width of 1 is the serial pipeline on one background thread.
    """

    def __init__(self, structure, workers: int = 2):
        if workers < 1:
            raise ValueError("merge workers must be positive")
        self.structure = structure
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-merge"
        )
        self._lock = Lock()
        self._partials: List = []
        self._futures: List[Future] = []
        self.merged_frames = 0

    # ------------------------------------------------------------- pipeline

    def submit(self, state: dict) -> None:
        """Queue one sibling state for decode + pre-merge on the pool."""
        self._futures.append(self._pool.submit(self._fold, state))

    def _fold(self, state: dict) -> None:
        sibling = self.structure.from_state(state)
        with self._lock:
            acc = self._partials.pop() if self._partials else None
            self.merged_frames += 1
        if acc is not None:
            sibling = acc.merge(sibling)
        with self._lock:
            self._partials.append(sibling)

    def drain(self):
        """Wait for every queued frame, reduce the partial accumulators
        pairwise on the pool, fold the survivor into the root, and return
        the root.  Errors from any pool task (a non-sibling state, a
        corrupt payload) re-raise here with their original tracebacks."""
        futures, self._futures = self._futures, []
        for future in futures:
            future.result()
        with self._lock:
            partials, self._partials = self._partials, []
        while len(partials) > 1:
            carry = [partials[-1]] if len(partials) % 2 else []
            merges = [
                self._pool.submit(partials[i].merge, partials[i + 1])
                for i in range(0, len(partials) - 1, 2)
            ]
            partials = [m.result() for m in merges] + carry
        if partials:
            self.structure.merge(partials[0])
        return self.structure

    # ---------------------------------------------------------------- admin

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MergePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def merge_tree(structure, states, workers: int = 2):
    """One-shot merge tree: decode and fold ``states`` (raw ``to_state``
    dicts) into ``structure`` through a :class:`MergePool`; returns
    ``structure``, bit-identical to folding the states serially."""
    with MergePool(structure, workers) as pool:
        for state in states:
            pool.submit(state)
        return pool.drain()
