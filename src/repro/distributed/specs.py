"""Sketch specs: build identical sketches on different machines.

A distributed run only works if every participant constructs the *same*
sketch — same class, same configuration, same seed (hence, through the
:class:`~repro.util.rng.RandomSource` lineage, the same hash functions).
A **sketch spec** is a small JSON-serializable dict pinning all of that:

.. code-block:: json

    {"kind": "countsketch", "rows": 5, "buckets": 1024, "track": 16, "seed": 7}
    {"kind": "gsum", "function": "x^2", "n": 4096, "epsilon": 0.25,
     "passes": 2, "heaviness": 0.05, "repetitions": 3, "seed": 7}

``passes: 2`` builds the estimator the coordinated round protocol drives
(``repro worker --passes 2`` / ``repro coordinate --passes 2``): round 1
ships first-pass states, the coordinator broadcasts the merged candidate
export, round 2 ships the exact second-pass tabulations.

``repro worker`` and ``repro coordinate`` both build their sketch from the
same CLI flags through :func:`build_sketch`; if the flags differ between
machines, the states carry different compatibility digests and the
coordinator's merge refuses loudly — misconfiguration cannot silently
corrupt an estimate.  ``gsum`` function names resolve through the
named-function registry (:mod:`repro.functions.registry`), so catalog
names and restricted expressions both work.
"""

from __future__ import annotations

from repro.sketch.ams import AmsF2Sketch
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch

SKETCH_KINDS = ("countsketch", "countmin", "ams", "gsum")


def build_sketch(spec: dict):
    """Construct the sketch a spec describes (see module docstring).

    Unknown keys are rejected rather than ignored: a typoed parameter on
    one machine would otherwise build a non-sibling whose merge failure is
    harder to diagnose than this error.
    """
    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in SKETCH_KINDS:
        raise ValueError(f"sketch kind must be one of {SKETCH_KINDS}, got {kind!r}")
    seed = int(spec.pop("seed", 0))
    try:
        if kind == "countsketch":
            return CountSketch(
                int(spec.pop("rows", 5)),
                int(spec.pop("buckets", 1024)),
                track=int(spec.pop("track", 0)),
                seed=seed,
                **_none_left(spec),
            )
        if kind == "countmin":
            return CountMinSketch(
                int(spec.pop("rows", 5)),
                int(spec.pop("buckets", 1024)),
                seed=seed,
                **_none_left(spec),
            )
        if kind == "ams":
            return AmsF2Sketch(
                int(spec.pop("medians", 5)),
                int(spec.pop("means_size", 32)),
                seed=seed,
                **_none_left(spec),
            )
        # gsum
        from repro.core.gsum import GSumEstimator
        from repro.functions.registry import resolve_function

        passes = int(spec.pop("passes", 1))
        if passes not in (1, 2):
            raise ValueError(
                "distributed gsum specs support passes 1 (one-shot) or 2 "
                "(the coordinated round protocol); got "
                f"passes={passes}"
            )
        return GSumEstimator(
            resolve_function(str(spec.pop("function", "x^2"))),
            int(spec.pop("n", 4096)),
            epsilon=float(spec.pop("epsilon", 0.25)),
            passes=passes,
            heaviness=float(spec.pop("heaviness", 0.05)),
            repetitions=int(spec.pop("repetitions", 3)),
            seed=seed,
            **_none_left(spec),
        )
    except TypeError as exc:  # pragma: no cover - defensive
        raise ValueError(f"bad {kind} sketch spec: {exc}") from exc


def _none_left(spec: dict) -> dict:
    if spec:
        raise ValueError(f"unknown sketch spec keys: {sorted(spec)}")
    return {}
