"""Distributed coordinator/worker ingestion over the state wire format.

N workers ingest disjoint stream partitions into sibling sketches and ship
their serialized states (:meth:`~repro.sketch.base.MergeableSketch.to_state`
JSON) to a coordinator that merges them — over a file drop-box or a TCP
socket transport.  Because every sketch's merge is exact, the coordinator
ends bit-identical to single-machine ingestion; the transports only decide
*how* states travel, never *what* the answer is.

Entry points: :func:`distributed_ingest` (single-call local driver),
``repro worker`` / ``repro coordinate`` (multi-machine CLI), and the
building blocks (:mod:`~repro.distributed.wire`,
:mod:`~repro.distributed.transport`, :mod:`~repro.distributed.worker`,
:mod:`~repro.distributed.coordinator`).  Architecture and wire-format
documentation: ``docs/ARCHITECTURE.md``.
"""

from repro.distributed.coordinator import coordinate, merge_states
from repro.distributed.driver import distributed_ingest
from repro.distributed.specs import build_sketch
from repro.distributed.transport import (
    CollectTimeout,
    FileTransport,
    SocketListener,
    SocketTransport,
    WorkerFailure,
)
from repro.distributed.wire import (
    error_message,
    recv_frame,
    send_frame,
    state_message,
)
from repro.distributed.worker import partition_bounds, run_worker, worker_slice

__all__ = [
    "CollectTimeout",
    "FileTransport",
    "SocketListener",
    "SocketTransport",
    "WorkerFailure",
    "build_sketch",
    "coordinate",
    "distributed_ingest",
    "error_message",
    "merge_states",
    "partition_bounds",
    "recv_frame",
    "run_worker",
    "send_frame",
    "state_message",
    "worker_slice",
]
