"""Distributed coordinator/worker ingestion over the state wire format.

N workers ingest disjoint stream partitions into sibling sketches and ship
their serialized states (:meth:`~repro.sketch.base.MergeableSketch.to_state`
JSON) to a merging coordinator — over a file drop-box or a TCP socket
transport.  Because every sketch's merge is exact, the coordinator ends
bit-identical to single-machine ingestion; the transports only decide
*how* states travel, never *what* the answer is.

Two protocols share the machinery:

* the **one-shot** protocol (:func:`distributed_ingest`): each worker
  ships one state frame per connection/file and the coordinator merges a
  batch of them;
* the **round protocol** (:func:`distributed_two_pass`,
  :class:`~repro.distributed.coordinator.RoundCoordinator`): persistent
  sessions carry round-tagged streaming delta frames up and candidate
  broadcasts down, so the coordinator can drive the paper's full two-pass
  G-sum algorithm across machines — round 1 merges first-pass states, the
  merged candidate cover is broadcast back, round 2 merges exact
  second-pass tabulations, bit-identical to single-machine
  :meth:`~repro.core.gsum.GSumEstimator.run`.

Entry points: :func:`distributed_ingest` / :func:`distributed_two_pass`
(single-call local drivers), ``repro worker`` / ``repro coordinate``
(multi-machine CLI, ``--passes 2`` for the round protocol), and the
building blocks (:mod:`~repro.distributed.wire`,
:mod:`~repro.distributed.transport`, :mod:`~repro.distributed.worker`,
:mod:`~repro.distributed.coordinator`).  Architecture and wire-format
documentation: ``docs/ARCHITECTURE.md``.
"""

from repro.distributed.coordinator import RoundCoordinator, coordinate, merge_states
from repro.distributed.driver import distributed_ingest, distributed_two_pass
from repro.distributed.merger import MergePool, merge_tree
from repro.distributed.specs import build_sketch
from repro.distributed.transport import (
    CollectTimeout,
    FileTransport,
    FileWorkerSession,
    RoundTracker,
    ShmTransport,
    ShmWorkerSession,
    SocketHub,
    SocketListener,
    SocketSession,
    SocketTransport,
    TransportTimeout,
    WorkerFailure,
    host_token,
)
from repro.distributed.wire import (
    delta_message,
    delta_skipped_message,
    error_message,
    recv_frame,
    round_begin_message,
    round_end_message,
    send_frame,
    state_message,
)
from repro.distributed.worker import (
    partition_bounds,
    run_worker,
    run_worker_rounds,
    ship_round,
    worker_slice,
)

__all__ = [
    "CollectTimeout",
    "FileTransport",
    "FileWorkerSession",
    "MergePool",
    "RoundCoordinator",
    "RoundTracker",
    "ShmTransport",
    "ShmWorkerSession",
    "SocketHub",
    "SocketListener",
    "SocketSession",
    "SocketTransport",
    "TransportTimeout",
    "WorkerFailure",
    "build_sketch",
    "coordinate",
    "delta_message",
    "delta_skipped_message",
    "distributed_ingest",
    "distributed_two_pass",
    "error_message",
    "host_token",
    "merge_states",
    "merge_tree",
    "partition_bounds",
    "recv_frame",
    "round_begin_message",
    "round_end_message",
    "run_worker",
    "run_worker_rounds",
    "send_frame",
    "ship_round",
    "state_message",
    "worker_slice",
]
