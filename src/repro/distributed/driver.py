"""Single-call driver: distributed ingestion on one machine.

:func:`distributed_ingest` runs the full coordinator/worker dataflow —
partition the stream, ingest each partition into a sibling sketch in a
worker, ship every worker's ``to_state()`` through a real transport,
collect and merge on the coordinator — with all participants hosted
locally (threads or processes).  The states cross an actual file system or
TCP socket either way, so this exercises exactly the machinery a real
multi-machine deployment uses; only the scheduling is local.  It is the
integration surface the equality tests drive: for every transport and
worker count, the merged state must be bit-identical to single-machine
ingestion.

For genuinely separate machines, run ``repro worker`` on each shard host
and ``repro coordinate`` on the collector (see :mod:`repro.cli`) — those
commands are thin wrappers over the same worker/coordinator modules.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable

from repro.distributed.coordinator import merge_states
from repro.distributed.transport import FileTransport, SocketListener, SocketTransport
from repro.distributed.worker import run_worker, worker_slice
from repro.streams.batching import DEFAULT_CHUNK
from repro.streams.model import StreamUpdate, TurnstileStream
from repro.streams.sharding import as_columnar, supports_sharding

TRANSPORTS = ("file", "socket")
WORKER_MODES = ("thread", "process")


def _spawned_worker(args):
    """Module-level so process mode can pickle it: run one worker end to
    end in a child process (the sibling arrives pickled, the state leaves
    through the transport like any remote worker's would)."""
    sibling, items, deltas, worker_id, transport, chunk_size, second_pass = args
    run_worker(sibling, items, deltas, worker_id, transport, chunk_size, second_pass)
    return worker_id


def distributed_ingest(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    workers: int = 2,
    transport: str = "file",
    mode: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    second_pass: bool = False,
    rendezvous: str | None = None,
    timeout: float = 120.0,
):
    """Ingest ``stream`` into ``structure`` through ``workers`` distributed
    workers over a real transport; the merged state is bit-identical to
    sequential ingestion.  Returns ``structure``.

    Parameters
    ----------
    structure:
        Any mergeable sketch with a batch path (same requirement as
        :func:`repro.streams.sharding.ingest_sharded`).  Its existing state
        is kept: the stream's contribution is added on top.
    workers:
        Worker count; each gets one contiguous stream partition.
    transport:
        ``"file"`` (drop-box directory; ``rendezvous`` names it, default a
        fresh temp dir) or ``"socket"`` (TCP on 127.0.0.1, ephemeral port).
    mode:
        ``"thread"`` hosts workers on a thread pool; ``"process"`` on a
        process pool (siblings must pickle — see
        :mod:`repro.functions.registry` for estimators).
    second_pass:
        Drive ``update_batch_second_pass`` on phase-cloned siblings (the
        distributed analogue of sharded two-pass ingestion).
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    if mode not in WORKER_MODES:
        raise ValueError(f"mode must be one of {WORKER_MODES}, got {mode!r}")
    if workers < 1:
        raise ValueError("workers must be positive")
    if not supports_sharding(structure):
        raise TypeError(
            f"{type(structure).__name__} does not implement the "
            "mergeable-sketch protocol required for distributed ingestion"
        )
    if second_pass and not hasattr(structure, "update_batch_second_pass"):
        raise TypeError(
            f"{type(structure).__name__} has no update_batch_second_pass"
        )

    items, deltas = as_columnar(stream, chunk_size)
    siblings = [structure.spawn_sibling() for _ in range(workers)]
    partitions = [worker_slice(items, deltas, i, workers) for i in range(workers)]

    tempdir = None
    listener = None
    try:
        if transport == "file":
            if rendezvous is None:
                tempdir = tempfile.TemporaryDirectory(prefix="repro-dist-")
                rendezvous = tempdir.name
            drop_box = FileTransport(rendezvous)
            drop_box.purge()
            sender = drop_box
            collector = drop_box
        else:
            listener = SocketListener()
            host, port = listener.address
            sender = SocketTransport(host, port)
            collector = listener

        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            jobs = [
                pool.submit(
                    _spawned_worker,
                    (sib, part[0], part[1], i, sender, chunk_size, second_pass),
                )
                for i, (sib, part) in enumerate(zip(siblings, partitions))
            ]
            # Collect concurrently: socket workers hand their frames to the
            # listener as they finish, file workers drop files we poll for.
            messages = collector.collect(workers, timeout=timeout)
            for job in jobs:
                job.result()  # surface worker exceptions with tracebacks
        return merge_states(structure, messages)
    finally:
        if listener is not None:
            listener.close()
        if tempdir is not None:
            tempdir.cleanup()
