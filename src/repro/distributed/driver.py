"""Single-call drivers: distributed ingestion on one machine.

:func:`distributed_ingest` runs the one-shot coordinator/worker dataflow —
partition the stream, ingest each partition into a sibling sketch in a
worker, ship every worker's ``to_state()`` through a real transport,
collect and merge on the coordinator — with all participants hosted
locally (threads or processes).  :func:`distributed_two_pass` runs the
full **round protocol** the same way: round 1 merges first-pass states
(optionally as streaming delta frames), the coordinator broadcasts the
merged candidate export, and round 2 merges the candidate-restricted
second passes — bit-identical to single-machine
:meth:`~repro.core.gsum.GSumEstimator.run`.  The states cross an actual
file system, TCP socket, or shared-memory segment either way, so this
exercises exactly the machinery a real multi-machine deployment uses;
only the scheduling is local.  These are the integration surfaces the
equality tests drive.

For genuinely separate machines, run ``repro worker`` on each shard host
and ``repro coordinate`` on the collector (see :mod:`repro.cli`) — those
commands are thin wrappers over the same worker/coordinator modules.
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable

from repro.distributed.coordinator import RoundCoordinator, merge_states
from repro.distributed.transport import (
    FileTransport,
    FileWorkerSession,
    ShmTransport,
    ShmWorkerSession,
    SocketHub,
    SocketListener,
    SocketSession,
    SocketTransport,
)
from repro.distributed.worker import run_worker, run_worker_rounds, worker_slice
from repro.streams.batching import DEFAULT_CHUNK
from repro.streams.model import StreamUpdate, TurnstileStream
from repro.streams.sharding import as_columnar, supports_sharding

TRANSPORTS = ("file", "socket", "shm")
WORKER_MODES = ("thread", "process")


def _spawned_worker(args):
    """Module-level so process mode can pickle it: run one worker end to
    end in a child process (the sibling arrives pickled, the state leaves
    through the transport like any remote worker's would)."""
    (sibling, items, deltas, worker_id, transport, chunk_size, second_pass,
     codec) = args
    run_worker(
        sibling, items, deltas, worker_id, transport, chunk_size, second_pass,
        codec=codec,
    )
    return worker_id


def _validate_common(structure, workers: int, transport: str, mode: str) -> None:
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    if mode not in WORKER_MODES:
        raise ValueError(f"mode must be one of {WORKER_MODES}, got {mode!r}")
    if workers < 1:
        raise ValueError("workers must be positive")
    if not supports_sharding(structure):
        raise TypeError(
            f"{type(structure).__name__} does not implement the "
            "mergeable-sketch protocol required for distributed ingestion"
        )


def distributed_ingest(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    workers: int = 2,
    transport: str = "file",
    mode: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    second_pass: bool = False,
    rendezvous: str | None = None,
    timeout: float = 120.0,
    codec: str | None = None,
    merge_workers: int = 0,
    merge_mode: str = "thread",
):
    """Ingest ``stream`` into ``structure`` through ``workers`` distributed
    workers over a real transport; the merged state is bit-identical to
    sequential ingestion.  Returns ``structure``.

    Parameters
    ----------
    structure:
        Any mergeable sketch with a batch path (same requirement as
        :func:`repro.streams.sharding.ingest_sharded`).  Its existing state
        is kept: the stream's contribution is added on top.
    workers:
        Worker count; each gets one contiguous stream partition.
    transport:
        ``"file"`` (drop-box directory; ``rendezvous`` names it, default a
        fresh temp dir), ``"socket"`` (TCP on 127.0.0.1, ephemeral port),
        or ``"shm"`` (the drop-box plus zero-copy shared-memory buffer
        shipping for binary-codec frames — same-host fleets only, with
        transparent inline fallback).
    mode:
        ``"thread"`` hosts workers on a thread pool; ``"process"`` on a
        process pool (siblings must pickle — see
        :mod:`repro.functions.registry` for estimators).
    second_pass:
        Drive ``update_batch_second_pass`` on phase-cloned siblings (the
        distributed analogue of sharded two-pass ingestion).
    codec:
        State codec every worker ships under (``dense-json`` default,
        ``sparse``, ``binary``, ``sparse-binary`` — see
        :mod:`repro.sketch.codec`); the merged result is bit-identical
        under any of them.
    merge_workers:
        ``> 1`` folds the collected states through the parallel merge
        tree (:mod:`repro.distributed.merger`) instead of serially.
    merge_mode:
        Merge-tree backend when ``merge_workers > 1``: ``"thread"``
        (default) or ``"process"`` (GIL-free pre-merging).
    """
    _validate_common(structure, workers, transport, mode)
    if second_pass and not hasattr(structure, "update_batch_second_pass"):
        raise TypeError(
            f"{type(structure).__name__} has no update_batch_second_pass"
        )

    items, deltas = as_columnar(stream, chunk_size)
    siblings = [structure.spawn_sibling() for _ in range(workers)]
    partitions = [worker_slice(items, deltas, i, workers) for i in range(workers)]

    tempdir = None
    listener = None
    drop_box = None
    try:
        if transport in ("file", "shm"):
            if rendezvous is None:
                tempdir = tempfile.TemporaryDirectory(prefix="repro-dist-")
                rendezvous = tempdir.name
            transport_cls = ShmTransport if transport == "shm" else FileTransport
            drop_box = transport_cls(rendezvous)
            drop_box.purge()
            if transport == "shm":
                drop_box.announce()  # local run: every worker is same-host
            sender = drop_box
            collector = drop_box
        else:
            listener = SocketListener()
            host, port = listener.address
            sender = SocketTransport(host, port)
            collector = listener

        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            jobs = [
                pool.submit(
                    _spawned_worker,
                    (sib, part[0], part[1], i, sender, chunk_size,
                     second_pass, codec),
                )
                for i, (sib, part) in enumerate(zip(siblings, partitions))
            ]
            # Collect concurrently: socket workers hand their frames to the
            # listener as they finish, file workers drop files we poll for.
            messages = collector.collect(workers, timeout=timeout)
            for job in jobs:
                job.result()  # surface worker exceptions with tracebacks
        return merge_states(structure, messages, merge_workers, merge_mode)
    finally:
        if listener is not None:
            listener.close()
        if transport == "shm" and drop_box is not None:
            drop_box.purge()  # unlink every segment this run created
        if tempdir is not None:
            tempdir.cleanup()


def _spawned_round_worker(args):
    """Module-level so process mode can pickle it: run one round-protocol
    worker end to end.  Socket sessions cannot cross a process boundary,
    so each worker dials the endpoint itself."""
    (sibling, items, deltas, worker_id, transport, endpoint, chunk_size,
     delta_every, passes, timeout, codec) = args
    if transport == "file":
        session = FileWorkerSession(endpoint)
    elif transport == "shm":
        session = ShmWorkerSession(endpoint)
    else:
        host, port = endpoint
        session = SocketSession(host, port, connect_timeout=timeout)
    try:
        run_worker_rounds(
            sibling, items, deltas, worker_id, session, chunk_size,
            delta_every, passes, timeout, codec=codec,
        )
    finally:
        session.close()
    return worker_id


def distributed_two_pass(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    workers: int = 2,
    transport: str = "file",
    mode: str = "thread",
    chunk_size: int = DEFAULT_CHUNK,
    delta_every: int = 0,
    rendezvous: str | None = None,
    timeout: float = 120.0,
    codec: str | None = None,
    merge_workers: int = 0,
    merge_mode: str = "thread",
    advertise_codec: str | None = None,
):
    """Run the full coordinated two-pass round protocol locally: round 1
    merges worker first-pass states, the coordinator broadcasts the merged
    candidate export back, round 2 merges the candidate-restricted second
    passes.  The result is bit-identical to single-machine
    :meth:`~repro.core.gsum.GSumEstimator.run` over the same stream.
    Returns ``structure``.

    Parameters beyond :func:`distributed_ingest`:

    delta_every:
        ``0`` ships one state frame per worker per round; ``> 0`` enables
        streaming merges — every ``delta_every`` updates each worker ships
        an incremental delta frame the coordinator merges on arrival
        (periods that leave the sketch untouched ship a ``delta_skipped``
        heartbeat instead of an empty payload).
    advertise_codec:
        The coordinator's preferred codec, advertised in the round-2
        ``round_begin`` broadcast (codec negotiation): workers launched
        with ``codec=None`` adopt it for their second-pass frames.

    ``codec`` picks the frame codec, ``merge_workers > 1`` fans frame
    merging out across the coordinator's merge pool (``merge_mode``
    selects its thread or process backend), exactly as in
    :func:`distributed_ingest`.
    """
    _validate_common(structure, workers, transport, mode)
    if getattr(structure, "passes", 2) != 2:
        raise ValueError(
            "distributed_two_pass requires a two-pass structure "
            f"(passes=2); got passes={getattr(structure, 'passes', None)!r}"
        )
    for hook in ("begin_second_pass", "export_candidates", "import_candidates"):
        if not hasattr(structure, hook):
            raise TypeError(
                f"{type(structure).__name__} has no {hook}; the round "
                "protocol needs the two-pass candidate hooks"
            )

    items, deltas = as_columnar(stream, chunk_size)
    siblings = [structure.spawn_sibling() for _ in range(workers)]
    partitions = [worker_slice(items, deltas, i, workers) for i in range(workers)]

    tempdir = None
    hub = None
    channel = None
    try:
        if transport in ("file", "shm"):
            if rendezvous is None:
                tempdir = tempfile.TemporaryDirectory(prefix="repro-dist-")
                rendezvous = tempdir.name
            transport_cls = ShmTransport if transport == "shm" else FileTransport
            channel = transport_cls(rendezvous)
            channel.purge()
            if transport == "shm":
                channel.announce()  # local run: every worker is same-host
            endpoint = rendezvous
        else:
            hub = SocketHub()
            channel = hub
            endpoint = hub.address

        pool_cls = ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            jobs = [
                pool.submit(
                    _spawned_round_worker,
                    (sib, part[0], part[1], i, transport, endpoint,
                     chunk_size, delta_every, 2, timeout, codec),
                )
                for i, (sib, part) in enumerate(zip(siblings, partitions))
            ]
            coordinator = RoundCoordinator(
                structure, channel, workers, timeout,
                merge_workers=merge_workers, merge_mode=merge_mode,
                codec=advertise_codec,
            )
            coordinator.run_two_pass()
            for job in jobs:
                job.result()  # surface worker exceptions with tracebacks
        return structure
    finally:
        if hub is not None:
            hub.close()
        if transport == "shm" and channel is not None:
            channel.purge()  # unlink every segment this run created
        if tempdir is not None:
            tempdir.cleanup()
