"""Stream serialization.

Experiments that feed the same stream to many estimators (or want
byte-for-byte reproducible workloads across machines) can persist streams
as JSON-lines: a header record with the model parameters followed by one
record per update.  The format is deliberately boring — greppable,
diffable, and stable across versions.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

import numpy as np

from repro.streams.model import StreamUpdate, TurnstileStream

FORMAT_VERSION = 1


def save_stream(stream: TurnstileStream, path: str | pathlib.Path) -> None:
    """Write a stream as JSONL: header line + one ``[item, delta]`` line
    per update, preserving arrival order."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        header = {
            "format": "repro-stream",
            "version": FORMAT_VERSION,
            "domain_size": stream.domain_size,
            "magnitude_bound": stream.magnitude_bound,
            "length": len(stream),
        }
        handle.write(json.dumps(header) + "\n")
        for update in stream:
            handle.write(f"[{update.item},{update.delta}]\n")


def load_stream(path: str | pathlib.Path) -> TurnstileStream:
    """Read a stream written by :func:`save_stream`.

    Validates the header and the declared length; malformed files raise
    ``ValueError`` rather than yielding a silently-truncated stream.
    """
    path = pathlib.Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty file")
        header = json.loads(header_line)
        if header.get("format") != "repro-stream":
            raise ValueError(f"{path}: not a repro stream file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        stream = TurnstileStream(
            header["domain_size"], magnitude_bound=header.get("magnitude_bound")
        )
        count = 0
        for line in handle:
            line = line.strip()
            if not line:
                continue
            item, delta = json.loads(line)
            stream.append(StreamUpdate(int(item), int(delta)))
            count += 1
        declared = header.get("length")
        if declared is not None and declared != count:
            raise ValueError(
                f"{path}: header declares {declared} updates, found {count}"
            )
    return stream


def iter_stream_array_chunks(
    path: str | pathlib.Path, chunk_size: int = 4096
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Stream a file written by :func:`save_stream` as columnar
    ``(items, deltas)`` int64 chunks, without materializing a
    :class:`TurnstileStream` (so arbitrarily long files ingest in
    O(chunk) memory).  Validates the header and declared length like
    :func:`load_stream`.

    Streaming caveat: truncation is only detectable at end of file, so a
    consumer feeding chunks into a sketch will have ingested the earlier
    chunks before the ``ValueError`` fires (the declared-length check runs
    *before* the final partial chunk is yielded).  Treat the sketch as
    poisoned if this generator raises; :func:`load_stream` validates fully
    before handing anything over, at the cost of materializing the stream.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    path = pathlib.Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty file")
        header = json.loads(header_line)
        if header.get("format") != "repro-stream":
            raise ValueError(f"{path}: not a repro stream file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        items: list[int] = []
        deltas: list[int] = []
        count = 0
        for line in handle:
            line = line.strip()
            if not line:
                continue
            item, delta = json.loads(line)
            items.append(int(item))
            deltas.append(int(delta))
            count += 1
            if len(items) >= chunk_size:
                yield (
                    np.array(items, dtype=np.int64),
                    np.array(deltas, dtype=np.int64),
                )
                items, deltas = [], []
        declared = header.get("length")
        if declared is not None and declared != count:
            raise ValueError(
                f"{path}: header declares {declared} updates, found {count}"
            )
        if items:
            yield np.array(items, dtype=np.int64), np.array(deltas, dtype=np.int64)


def save_frequency_profile(
    stream: TurnstileStream, path: str | pathlib.Path
) -> None:
    """Write only the net frequency vector (item -> frequency JSON map) —
    a compact form for workloads where arrival order is irrelevant."""
    path = pathlib.Path(path)
    profile = {
        "format": "repro-frequencies",
        "version": FORMAT_VERSION,
        "domain_size": stream.domain_size,
        "frequencies": {
            str(item): value for item, value in stream.frequency_vector().items()
        },
    }
    path.write_text(json.dumps(profile, indent=None, separators=(",", ":")))


def load_frequency_profile(path: str | pathlib.Path) -> TurnstileStream:
    path = pathlib.Path(path)
    profile = json.loads(path.read_text())
    if profile.get("format") != "repro-frequencies":
        raise ValueError(f"{path}: not a repro frequency profile")
    stream = TurnstileStream(profile["domain_size"])
    for item, value in sorted(profile["frequencies"].items(), key=lambda kv: int(kv[0])):
        if value:
            stream.append(StreamUpdate(int(item), int(value)))
    return stream
