"""Sharded parallel ingestion over mergeable sketches.

The scale lever the mergeable-sketch protocol exists for: split a stream's
columnar ``(items, deltas)`` arrays into N contiguous shard slabs, drive
each slab into a :meth:`~repro.sketch.base.MergeableSketch.spawn_sibling`
of the target structure on a worker pool, and fold the shard states back
with :meth:`~repro.sketch.base.MergeableSketch.merge`.  Because every
implementer's state transition is order- and chunking-insensitive (the
invariance contract of :mod:`repro.sketch.base`), the merged result is
**bit-identical** to sequential ingestion — sharding is a pure throughput
decision, never an accuracy trade.

Three execution modes:

``thread`` (default)
    ``ThreadPoolExecutor`` over ``update_batch``.  The numpy kernels
    (Horner hashing, ``np.bincount`` scatter-adds) release the GIL, so
    linear-sketch ingestion scales with cores without pickling anything.
``process``
    ``ProcessPoolExecutor``; each worker receives a pickled empty sibling
    plus its slab and ships its ``to_state()`` dict back.  Requires the
    sketch to be picklable: the raw sketches are, and ``GSumEstimator``
    is whenever its ``GFunction`` was built through the named-function
    registry (:mod:`repro.functions.registry`) — every catalog entry,
    ``random_g`` family member, and CLI expression qualifies.  A
    hand-rolled ``GFunction(fn, ...)`` is the one thing that still needs
    thread mode.
``serial``
    Same spawn/merge dataflow on the caller's thread.  Useful for testing
    the merge path and as the degenerate N=1 case.

The same engine drives second passes (``second_pass=True`` uses
``update_batch_second_pass`` on phase-cloned siblings), which is how
``GSumEstimator(..., passes=2, shards=N)`` runs both passes in parallel.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, List, Tuple

import numpy as np

from repro.sketch.base import MergeableSketch
from repro.streams.batching import DEFAULT_CHUNK, iter_update_chunks
from repro.streams.model import StreamUpdate, TurnstileStream

SHARD_MODES = ("thread", "process", "serial")


def shard_slabs(
    items: np.ndarray, deltas: np.ndarray, shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split columnar arrays into up to ``shards`` contiguous, zero-copy,
    near-equal slabs (fewer when there are fewer updates than shards)."""
    if shards < 1:
        raise ValueError("shards must be positive")
    total = items.shape[0]
    shards = min(shards, max(total, 1))
    bounds = np.linspace(0, total, shards + 1, dtype=np.int64)
    return [
        (items[start:stop], deltas[start:stop])
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]


def as_columnar(
    stream: "TurnstileStream | Iterable[StreamUpdate] | Tuple[np.ndarray, np.ndarray]",
    chunk_size: int = DEFAULT_CHUNK,
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize a stream (or accept a prebuilt array pair) as columnar
    int64 arrays in arrival order."""
    if (
        isinstance(stream, tuple)
        and len(stream) == 2
        and all(isinstance(part, np.ndarray) for part in stream)
    ):
        return stream  # already columnar
    if isinstance(stream, TurnstileStream):
        return stream.as_arrays()
    chunks = list(iter_update_chunks(stream, chunk_size))
    if not chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return (
        np.concatenate([c[0] for c in chunks]),
        np.concatenate([c[1] for c in chunks]),
    )


def feed_chunks(structure, items, deltas, chunk_size=DEFAULT_CHUNK, second_pass=False):
    """Drive a columnar slab into ``structure`` through its batch method in
    ``chunk_size`` pieces (the per-worker inner loop of every shard mode,
    and of the distributed workers)."""
    update = (
        structure.update_batch_second_pass if second_pass else structure.update_batch
    )
    for start in range(0, items.shape[0], chunk_size):
        update(items[start : start + chunk_size], deltas[start : start + chunk_size])
    return structure


def _process_worker(args):
    """Module-level so ProcessPoolExecutor can pickle it: fill the shipped
    sibling and return its serialized state."""
    sibling, items, deltas, chunk_size, second_pass = args
    feed_chunks(sibling, items, deltas, chunk_size, second_pass)
    return sibling.to_state()


def supports_sharding(structure) -> bool:
    """True when ``structure`` implements enough of the mergeable-sketch
    protocol for :func:`ingest_sharded` (spawn + merge + batch updates)."""
    return isinstance(structure, MergeableSketch) and hasattr(
        structure, "update_batch"
    )


def ingest_sharded(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    shards: int,
    chunk_size: int = DEFAULT_CHUNK,
    mode: str = "thread",
    second_pass: bool = False,
):
    """Ingest ``stream`` into ``structure`` across ``shards`` parallel
    shards and merge; state afterwards is bit-identical to sequential
    ingestion.  Returns ``structure``.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"shard mode must be one of {SHARD_MODES}, got {mode!r}")
    if not supports_sharding(structure):
        raise TypeError(
            f"{type(structure).__name__} does not implement the "
            "mergeable-sketch protocol required for sharded ingestion"
        )
    if second_pass and not hasattr(structure, "update_batch_second_pass"):
        raise TypeError(
            f"{type(structure).__name__} has no update_batch_second_pass; "
            "drive its second pass sequentially instead"
        )
    items, deltas = as_columnar(stream, chunk_size)
    slabs = shard_slabs(items, deltas, shards)
    if len(slabs) <= 1:
        for slab_items, slab_deltas in slabs:
            feed_chunks(structure, slab_items, slab_deltas, chunk_size, second_pass)
        return structure

    # Shard 0 folds straight into the caller's structure (which may already
    # carry state from earlier streams); the rest go through empty siblings.
    siblings = [structure.spawn_sibling() for _ in slabs[1:]]
    workers = [structure] + siblings

    if mode == "serial":
        for worker, (slab_items, slab_deltas) in zip(workers, slabs):
            feed_chunks(worker, slab_items, slab_deltas, chunk_size, second_pass)
    elif mode == "thread":
        with ThreadPoolExecutor(max_workers=len(slabs)) as pool:
            futures = [
                pool.submit(feed_chunks, worker, si, sd, chunk_size, second_pass)
                for worker, (si, sd) in zip(workers, slabs)
            ]
            for future in futures:
                future.result()
    else:  # process
        with ProcessPoolExecutor(max_workers=len(slabs) - 1) as pool:
            try:
                jobs = [
                    pool.submit(
                        _process_worker, (sib, si, sd, chunk_size, second_pass)
                    )
                    for sib, (si, sd) in zip(siblings, slabs[1:])
                ]
                feed_chunks(
                    structure, slabs[0][0], slabs[0][1], chunk_size, second_pass
                )
                siblings = [
                    sib.from_state(job.result()) for sib, job in zip(siblings, jobs)
                ]
            except pickle.PicklingError as exc:
                raise TypeError(
                    f"{type(structure).__name__} cannot cross a process "
                    f"boundary ({exc}); use shard mode 'thread', or build "
                    "its GFunction through repro.functions.registry so it "
                    "serializes"
                ) from exc

    for sibling in siblings:
        structure.merge(sibling)
    return structure
