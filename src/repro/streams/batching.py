"""Chunked batch ingestion — the shared driver behind every ``process()``.

Every streaming structure in the library accepts one update at a time via
``update(item, delta)``; the structures converted to the batch protocol
additionally accept whole columnar chunks via ``update_batch(items,
deltas)`` (two equal-length 1-D ``int64`` arrays).  :func:`drive` routes a
stream through ``update_batch`` in fixed-size chunks when the structure
supports it and falls back to the scalar loop otherwise, so callers never
need to know which path a structure implements.

Contract: for any structure, replaying a stream through ``update`` and
through ``drive``/``update_batch`` (any chunking) must leave the sketch
state bit-for-bit identical — deltas are integers, every counter is a sum
of integers far below 2^53, so float64 accumulation order cannot change
the result; the hash families evaluate identically in scalar and batched
form; and CountSketch candidate tracking replays the exact scalar
estimate sequence via grouped prefix-sums.
``tests/test_batch_equivalence.py`` enforces this.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.streams.model import StreamUpdate, TurnstileStream

#: Default ingestion chunk: large enough that numpy fixed costs amortize,
#: small enough that per-chunk scratch arrays stay cache-friendly.
DEFAULT_CHUNK = 4096


def as_batch(
    items: "np.ndarray | Iterable[int]", deltas: "np.ndarray | Iterable[int]"
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a (items, deltas) pair to 1-D ``int64`` arrays.

    Non-integral deltas raise rather than truncate: the turnstile model is
    integer-valued, and a float delta silently coerced to int64 would make
    the batch path diverge from a scalar replay instead of failing loudly.
    """
    items_arr = np.asarray(items, dtype=np.int64)
    deltas_arr = np.asarray(deltas)
    if np.issubdtype(deltas_arr.dtype, np.floating):
        if not np.array_equal(deltas_arr, np.trunc(deltas_arr)):
            raise ValueError("batch deltas must be integers (turnstile model)")
    deltas_arr = deltas_arr.astype(np.int64, copy=False)
    if items_arr.ndim != 1 or deltas_arr.ndim != 1:
        raise ValueError("batch items and deltas must be 1-D arrays")
    if items_arr.shape[0] != deltas_arr.shape[0]:
        raise ValueError(
            f"batch length mismatch: {items_arr.shape[0]} items vs "
            f"{deltas_arr.shape[0]} deltas"
        )
    return items_arr, deltas_arr


def aggregate_batch(
    items: np.ndarray, deltas: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Net the batch per distinct item: ``(unique_items, net_deltas)``.

    Summing deltas per item before hashing/scattering is what makes the
    batch path fast (hash each distinct item once); it is exact because
    counter updates commute over integers.
    """
    unique, inverse = np.unique(items, return_inverse=True)
    net = np.bincount(
        inverse, weights=deltas.astype(np.float64), minlength=unique.shape[0]
    ).astype(np.int64)
    return unique, net


def apply_net_counts(
    counts: dict, unique: np.ndarray, net: np.ndarray
) -> None:
    """Apply per-item net deltas to a sparse ``item -> count`` dict,
    dropping entries that reach zero — the shared tail of every exact
    tabulation's batch path.  Equivalent to a scalar replay because
    integer counter updates commute."""
    for item, delta in zip(unique.tolist(), net.tolist()):
        if delta == 0:
            continue
        new = counts.get(item, 0) + delta
        if new == 0:
            counts.pop(item, None)
        else:
            counts[item] = new


def iter_update_chunks(
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(items, deltas)`` int64 chunk pairs covering the stream in
    arrival order.  Materialized streams yield zero-copy views of their
    cached columnar arrays; generic iterables are buffered chunk by chunk.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if isinstance(stream, TurnstileStream):
        yield from stream.iter_array_chunks(chunk_size)
        return
    items: list[int] = []
    deltas: list[int] = []
    for update in stream:
        items.append(update.item)
        deltas.append(update.delta)
        if len(items) >= chunk_size:
            yield as_batch(items, deltas)
            items, deltas = [], []
    if items:
        yield as_batch(items, deltas)


def drive(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    chunk_size: int = DEFAULT_CHUNK,
    shards: int = 1,
    shard_mode: str = "thread",
):
    """Feed a stream into a structure, batched when it supports it.

    With ``shards > 1`` the stream is split across sibling sketches driven
    by a worker pool and merged back — requires the structure to implement
    the mergeable-sketch protocol (see :mod:`repro.streams.sharding`); the
    result is bit-identical to sequential ingestion.
    """
    if shards > 1:
        from repro.streams.sharding import ingest_sharded

        return ingest_sharded(
            structure, stream, shards, chunk_size, mode=shard_mode
        )
    update_batch = getattr(structure, "update_batch", None)
    if update_batch is None:
        for update in stream:
            structure.update(update.item, update.delta)
    else:
        for items, deltas in iter_update_chunks(stream, chunk_size):
            update_batch(items, deltas)
    return structure


def drive_second_pass(
    structure,
    stream: "TurnstileStream | Iterable[StreamUpdate]",
    chunk_size: int = DEFAULT_CHUNK,
    shards: int = 1,
    shard_mode: str = "thread",
):
    """Second-pass analogue of :func:`drive` for two-pass structures."""
    if shards > 1:
        from repro.streams.sharding import ingest_sharded

        return ingest_sharded(
            structure,
            stream,
            shards,
            chunk_size,
            mode=shard_mode,
            second_pass=True,
        )
    update_batch = getattr(structure, "update_batch_second_pass", None)
    if update_batch is None:
        for update in stream:
            structure.update_second_pass(update.item, update.delta)
    else:
        for items, deltas in iter_update_chunks(stream, chunk_size):
            update_batch(items, deltas)
    return structure
