"""Turnstile stream model, batch ingestion, and workload generators
(Section 1.2)."""

from repro.streams.batching import (
    DEFAULT_CHUNK,
    aggregate_batch,
    apply_net_counts,
    as_batch,
    drive,
    drive_second_pass,
    iter_update_chunks,
)
from repro.streams.generators import (
    DEFAULT_ZIPF_SKEWS,
    adaptive_adversarial_stream,
    collision_stream,
    deletion_storm_stream,
    distinct_flood_stream,
    mixture_sample_stream,
    planted_heavy_hitter_stream,
    poisson_sample_stream,
    sinusoid_adversarial_stream,
    two_level_stream,
    uniform_stream,
    zipf_stream,
    zipf_sweep,
)
from repro.streams.io import (
    iter_stream_array_chunks,
    load_frequency_profile,
    load_stream,
    save_frequency_profile,
    save_stream,
)
from repro.streams.model import (
    FrequencyVector,
    StreamUpdate,
    TurnstileStream,
    stream_from_frequencies,
    stream_from_samples,
)
from repro.streams.sharding import (
    ingest_sharded,
    shard_slabs,
    supports_sharding,
)

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_ZIPF_SKEWS",
    "FrequencyVector",
    "StreamUpdate",
    "TurnstileStream",
    "adaptive_adversarial_stream",
    "aggregate_batch",
    "apply_net_counts",
    "as_batch",
    "collision_stream",
    "deletion_storm_stream",
    "distinct_flood_stream",
    "drive",
    "drive_second_pass",
    "ingest_sharded",
    "iter_stream_array_chunks",
    "iter_update_chunks",
    "shard_slabs",
    "supports_sharding",
    "load_frequency_profile",
    "load_stream",
    "mixture_sample_stream",
    "planted_heavy_hitter_stream",
    "poisson_sample_stream",
    "save_frequency_profile",
    "save_stream",
    "sinusoid_adversarial_stream",
    "stream_from_frequencies",
    "stream_from_samples",
    "two_level_stream",
    "uniform_stream",
    "zipf_stream",
    "zipf_sweep",
]
