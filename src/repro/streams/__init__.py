"""Turnstile stream model and workload generators (Section 1.2)."""

from repro.streams.model import (
    StreamUpdate,
    TurnstileStream,
    FrequencyVector,
    stream_from_frequencies,
    stream_from_samples,
)
from repro.streams.io import (
    load_frequency_profile,
    load_stream,
    save_frequency_profile,
    save_stream,
)
from repro.streams.generators import (
    uniform_stream,
    zipf_stream,
    planted_heavy_hitter_stream,
    poisson_sample_stream,
    mixture_sample_stream,
    two_level_stream,
    sinusoid_adversarial_stream,
)

__all__ = [
    "StreamUpdate",
    "TurnstileStream",
    "FrequencyVector",
    "stream_from_frequencies",
    "stream_from_samples",
    "uniform_stream",
    "zipf_stream",
    "planted_heavy_hitter_stream",
    "poisson_sample_stream",
    "mixture_sample_stream",
    "two_level_stream",
    "sinusoid_adversarial_stream",
    "load_frequency_profile",
    "load_stream",
    "save_frequency_profile",
    "save_stream",
]
