"""Workload generators for the experiments.

Each generator returns a :class:`TurnstileStream`.  They cover the workloads
the paper's applications motivate: skewed count distributions (Zipf), i.i.d.
samples from discrete distributions (the log-likelihood application of
Section 1.1.1), planted heavy hitters (heavy-hitter recovery experiments),
two-level frequency profiles (the INDEX/DISJ reduction shapes), and
adversarial placements near the valleys of oscillating functions (the
predictability separation of experiment E2).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.streams.model import StreamUpdate, TurnstileStream
from repro.util.rng import RandomSource, as_source


def _emit_frequencies(
    frequencies: dict[int, int],
    domain_size: int,
    source: RandomSource,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Emit each frequency, optionally as insert/delete pairs.

    With ``turnstile_noise = t > 0`` each coordinate with target frequency f
    is emitted as ``f + e`` insertions followed by ``e`` deletions where
    ``e ~ Binomial(ceil(t*|f|+1), 1/2)`` — the net vector is unchanged but
    the stream genuinely exercises the turnstile (deletion) path.
    """
    stream = TurnstileStream(domain_size)
    order = list(frequencies.items())
    source.shuffle(order)
    for item, value in order:
        if value == 0:
            continue
        if turnstile_noise > 0.0:
            extra = int(source.integers(0, max(2, int(turnstile_noise * abs(value)) + 2)))
            sign = 1 if value > 0 else -1
            stream.append(StreamUpdate(item, value + sign * extra))
            if extra:
                stream.append(StreamUpdate(item, -sign * extra))
        else:
            stream.append(StreamUpdate(item, value))
    return stream


def uniform_stream(
    n: int,
    magnitude: int,
    support: int | None = None,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Frequencies drawn uniformly from ``[1, magnitude]`` on a random
    support (default: the full domain)."""
    source = as_source(seed, "uniform_stream")
    support = n if support is None else min(support, n)
    items = source.choice(np.arange(n), size=support, replace=False)
    freqs = {
        int(item): int(source.integers(1, magnitude + 1)) for item in items
    }
    return _emit_frequencies(freqs, n, source, turnstile_noise)


def zipf_stream(
    n: int,
    total_mass: int,
    skew: float = 1.1,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Zipf-distributed frequencies: item ranked r gets mass ~ r^-skew.

    ``total_mass`` is the approximate F1 of the result.  Zipf workloads are
    the canonical heavy-hitter-bearing streams (few large, many small
    frequencies) and are the default workload of experiment E1.
    """
    if skew <= 0:
        raise ValueError("skew must be positive")
    source = as_source(seed, "zipf_stream")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    raw = weights * total_mass
    freqs: dict[int, int] = {}
    ids = np.arange(n)
    source.shuffle(ids)
    for rank, item in enumerate(ids):
        f = int(round(raw[rank]))
        if f > 0:
            freqs[int(item)] = f
    if not freqs:
        freqs[int(ids[0])] = max(1, total_mass)
    return _emit_frequencies(freqs, n, source, turnstile_noise)


def planted_heavy_hitter_stream(
    n: int,
    heavy_frequency: int,
    noise_frequency: int,
    noise_support: int,
    heavy_item: int | None = None,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> tuple[TurnstileStream, int]:
    """One planted item at ``heavy_frequency`` over a floor of
    ``noise_support`` items at ``noise_frequency``.

    Returns ``(stream, heavy_item)``.  This is the shape used throughout the
    lower-bound proofs (one large frequency hidden among many small ones)
    and by the g_np recovery experiment E5.
    """
    source = as_source(seed, "planted_stream")
    if noise_support >= n:
        raise ValueError("noise support must leave room for the heavy item")
    ids = np.arange(n)
    source.shuffle(ids)
    heavy = int(ids[0]) if heavy_item is None else int(heavy_item)
    noise_items = [int(i) for i in ids[1 : noise_support + 1] if int(i) != heavy]
    freqs = {item: noise_frequency for item in noise_items}
    freqs[heavy] = heavy_frequency
    return _emit_frequencies(freqs, n, source, turnstile_noise), heavy


def poisson_sample_stream(
    n: int,
    rate: float,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """``n`` coordinates i.i.d. Poisson(rate), realized as unit insertions.

    Models the Section 1.1.1 setting where stream coordinates are i.i.d.
    samples and the log-likelihood is a g-SUM.
    """
    source = as_source(seed, "poisson_stream")
    counts = source.generator.poisson(rate, size=n)
    stream = TurnstileStream(n)
    for item, count in enumerate(counts):
        if count > 0:
            stream.append(StreamUpdate(item, int(count)))
    return stream


def mixture_sample_stream(
    n: int,
    rates: Sequence[float],
    weights: Sequence[float],
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Coordinates i.i.d. from a Poisson mixture (the paper's example of a
    non-monotone log-likelihood: p(x) = sum_k w_k Pois(x; rate_k))."""
    if len(rates) != len(weights):
        raise ValueError("rates and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must have positive sum")
    source = as_source(seed, "mixture_stream")
    probs = np.asarray(weights, dtype=float) / total
    components = source.generator.choice(len(rates), size=n, p=probs)
    stream = TurnstileStream(n)
    for item in range(n):
        count = int(source.generator.poisson(rates[components[item]]))
        if count > 0:
            stream.append(StreamUpdate(item, count))
    return stream


def two_level_stream(
    n: int,
    large_frequency: int,
    large_support: int,
    small_frequency: int,
    small_support: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Two frequency levels — the INDEX/DISJ reduction profile: a block of
    items at a large frequency plus a block at a small one."""
    source = as_source(seed, "two_level_stream")
    if large_support + small_support > n:
        raise ValueError("supports exceed the domain")
    ids = np.arange(n)
    source.shuffle(ids)
    freqs: dict[int, int] = {}
    for item in ids[:large_support]:
        freqs[int(item)] = large_frequency
    for item in ids[large_support : large_support + small_support]:
        freqs[int(item)] = small_frequency
    return _emit_frequencies(freqs, n, source)


def sinusoid_adversarial_stream(
    n: int,
    g_period_fn: Callable[[int], float],
    center: int,
    spread: int,
    support: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Frequencies placed where an oscillating g is most variable.

    For the predictability separation (E2) we place frequencies in a window
    ``[center - spread, center + spread]`` chosen so that small frequency
    estimation errors flip ``g`` across a valley of the sinusoid; the
    function values at adjacent integers differ by a constant factor, so a
    1-pass algorithm relying on approximate frequencies mis-scores items
    while a 2-pass algorithm (exact tabulation) does not.  ``g_period_fn``
    is consulted to bias placements toward locally-variable points.
    """
    source = as_source(seed, "sin_adversarial")
    lo = max(1, center - spread)
    hi = center + spread
    candidates = np.arange(lo, hi + 1)
    variability = np.array(
        [abs(g_period_fn(int(x) + 1) - g_period_fn(int(x))) for x in candidates]
    )
    if variability.sum() <= 0:
        probs = np.full(len(candidates), 1.0 / len(candidates))
    else:
        probs = variability / variability.sum()
    ids = np.arange(n)
    source.shuffle(ids)
    freqs: dict[int, int] = {}
    for item in ids[:support]:
        value = int(source.generator.choice(candidates, p=probs))
        freqs[int(item)] = value
    return _emit_frequencies(freqs, n, source)


def samples_from_pmf(
    pmf: Callable[[int], float],
    max_value: int,
    count: int,
    seed: int | RandomSource | None = None,
) -> list[int]:
    """Draw ``count`` samples from a discrete pmf on {0..max_value}
    (normalizing numerically); helper for likelihood experiments."""
    source = as_source(seed, "pmf_samples")
    probs = np.array([max(pmf(x), 0.0) for x in range(max_value + 1)], dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ValueError("pmf has no mass on the requested range")
    probs /= total
    return [int(x) for x in source.generator.choice(max_value + 1, size=count, p=probs)]


def sample_stream_from_pmf(
    pmf: Callable[[int], float],
    n: int,
    max_value: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Each of the ``n`` coordinates gets an i.i.d. draw from the pmf."""
    values = samples_from_pmf(pmf, max_value, n, seed)
    stream = TurnstileStream(n)
    for item, value in enumerate(values):
        if value > 0:
            stream.append(StreamUpdate(item, value))
    return stream
