"""Workload generators for the experiments.

Each generator returns a :class:`TurnstileStream`.  They cover the workloads
the paper's applications motivate: skewed count distributions (Zipf), i.i.d.
samples from discrete distributions (the log-likelihood application of
Section 1.1.1), planted heavy hitters (heavy-hitter recovery experiments),
two-level frequency profiles (the INDEX/DISJ reduction shapes), and
adversarial placements near the valleys of oscillating functions (the
predictability separation of experiment E2).

The second half of the module is the **adversarial workload zoo** — streams
built to stress the probabilistic guarantees rather than exercise the happy
path, consumed by ``tests/test_adversarial_workloads.py``,
:mod:`repro.verify`, and ``benchmarks/bench_s5_adversarial.py``:

* :func:`zipf_sweep` — heavy-tailed sweeps across skew exponents;
* :func:`deletion_storm_stream` — all-deletion turnstile storms that drive
  every count back through zero (and past it);
* :func:`distinct_flood_stream` — all-distinct floods that overflow the
  CountSketch candidate pool;
* :func:`collision_stream` — inputs that seek hash collisions against a
  *specific* CountSketch instance, derived from its row-hash structure;
* :func:`adaptive_adversarial_stream` — an adaptive adversary that
  interleaves queries and inserts against a live victim sketch, steering
  mass onto the items the victim's estimates reveal as colliding.

The guarantees are probabilistic over *hash choice*, so the last two are
instance-targeted: they break the attacked seed while fresh seeds keep the
advertised bounds — exactly the distinction :mod:`repro.verify` measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.streams.model import StreamUpdate, TurnstileStream
from repro.util.rng import RandomSource, as_source

if TYPE_CHECKING:  # circular at runtime: sketch modules import streams
    from repro.sketch.countsketch import CountSketch


def _emit_frequencies(
    frequencies: dict[int, int],
    domain_size: int,
    source: RandomSource,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Emit each frequency, optionally as insert/delete pairs.

    With ``turnstile_noise = t > 0`` each coordinate with target frequency f
    is emitted as ``f + e`` insertions followed by ``e`` deletions where
    ``e ~ Binomial(ceil(t*|f|+1), 1/2)`` — the net vector is unchanged but
    the stream genuinely exercises the turnstile (deletion) path.
    """
    stream = TurnstileStream(domain_size)
    order = list(frequencies.items())
    source.shuffle(order)
    for item, value in order:
        if value == 0:
            continue
        if turnstile_noise > 0.0:
            extra = int(source.integers(0, max(2, int(turnstile_noise * abs(value)) + 2)))
            sign = 1 if value > 0 else -1
            stream.append(StreamUpdate(item, value + sign * extra))
            if extra:
                stream.append(StreamUpdate(item, -sign * extra))
        else:
            stream.append(StreamUpdate(item, value))
    return stream


def uniform_stream(
    n: int,
    magnitude: int,
    support: int | None = None,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Frequencies drawn uniformly from ``[1, magnitude]`` on a random
    support (default: the full domain)."""
    source = as_source(seed, "uniform_stream")
    support = n if support is None else min(support, n)
    items = source.choice(np.arange(n), size=support, replace=False)
    freqs = {
        int(item): int(source.integers(1, magnitude + 1)) for item in items
    }
    return _emit_frequencies(freqs, n, source, turnstile_noise)


def zipf_stream(
    n: int,
    total_mass: int,
    skew: float = 1.1,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> TurnstileStream:
    """Zipf-distributed frequencies: item ranked r gets mass ~ r^-skew.

    ``total_mass`` is the approximate F1 of the result.  Zipf workloads are
    the canonical heavy-hitter-bearing streams (few large, many small
    frequencies) and are the default workload of experiment E1.
    """
    if skew <= 0:
        raise ValueError("skew must be positive")
    source = as_source(seed, "zipf_stream")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    raw = weights * total_mass
    freqs: dict[int, int] = {}
    ids = np.arange(n)
    source.shuffle(ids)
    for rank, item in enumerate(ids):
        f = int(round(raw[rank]))
        if f > 0:
            freqs[int(item)] = f
    if not freqs:
        freqs[int(ids[0])] = max(1, total_mass)
    return _emit_frequencies(freqs, n, source, turnstile_noise)


def planted_heavy_hitter_stream(
    n: int,
    heavy_frequency: int,
    noise_frequency: int,
    noise_support: int,
    heavy_item: int | None = None,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> tuple[TurnstileStream, int]:
    """One planted item at ``heavy_frequency`` over a floor of
    ``noise_support`` items at ``noise_frequency``.

    Returns ``(stream, heavy_item)``.  This is the shape used throughout the
    lower-bound proofs (one large frequency hidden among many small ones)
    and by the g_np recovery experiment E5.
    """
    source = as_source(seed, "planted_stream")
    if noise_support >= n:
        raise ValueError("noise support must leave room for the heavy item")
    ids = np.arange(n)
    source.shuffle(ids)
    heavy = int(ids[0]) if heavy_item is None else int(heavy_item)
    noise_items = [int(i) for i in ids[1 : noise_support + 1] if int(i) != heavy]
    freqs = {item: noise_frequency for item in noise_items}
    freqs[heavy] = heavy_frequency
    return _emit_frequencies(freqs, n, source, turnstile_noise), heavy


def poisson_sample_stream(
    n: int,
    rate: float,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """``n`` coordinates i.i.d. Poisson(rate), realized as unit insertions.

    Models the Section 1.1.1 setting where stream coordinates are i.i.d.
    samples and the log-likelihood is a g-SUM.
    """
    source = as_source(seed, "poisson_stream")
    counts = source.generator.poisson(rate, size=n)
    stream = TurnstileStream(n)
    for item, count in enumerate(counts):
        if count > 0:
            stream.append(StreamUpdate(item, int(count)))
    return stream


def mixture_sample_stream(
    n: int,
    rates: Sequence[float],
    weights: Sequence[float],
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Coordinates i.i.d. from a Poisson mixture (the paper's example of a
    non-monotone log-likelihood: p(x) = sum_k w_k Pois(x; rate_k))."""
    if len(rates) != len(weights):
        raise ValueError("rates and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must have positive sum")
    source = as_source(seed, "mixture_stream")
    probs = np.asarray(weights, dtype=float) / total
    components = source.generator.choice(len(rates), size=n, p=probs)
    stream = TurnstileStream(n)
    for item in range(n):
        count = int(source.generator.poisson(rates[components[item]]))
        if count > 0:
            stream.append(StreamUpdate(item, count))
    return stream


def two_level_stream(
    n: int,
    large_frequency: int,
    large_support: int,
    small_frequency: int,
    small_support: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Two frequency levels — the INDEX/DISJ reduction profile: a block of
    items at a large frequency plus a block at a small one."""
    source = as_source(seed, "two_level_stream")
    if large_support + small_support > n:
        raise ValueError("supports exceed the domain")
    ids = np.arange(n)
    source.shuffle(ids)
    freqs: dict[int, int] = {}
    for item in ids[:large_support]:
        freqs[int(item)] = large_frequency
    for item in ids[large_support : large_support + small_support]:
        freqs[int(item)] = small_frequency
    return _emit_frequencies(freqs, n, source)


def sinusoid_adversarial_stream(
    n: int,
    g_period_fn: Callable[[int], float],
    center: int,
    spread: int,
    support: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Frequencies placed where an oscillating g is most variable.

    For the predictability separation (E2) we place frequencies in a window
    ``[center - spread, center + spread]`` chosen so that small frequency
    estimation errors flip ``g`` across a valley of the sinusoid; the
    function values at adjacent integers differ by a constant factor, so a
    1-pass algorithm relying on approximate frequencies mis-scores items
    while a 2-pass algorithm (exact tabulation) does not.  ``g_period_fn``
    is consulted to bias placements toward locally-variable points.
    """
    source = as_source(seed, "sin_adversarial")
    lo = max(1, center - spread)
    hi = center + spread
    candidates = np.arange(lo, hi + 1)
    variability = np.array(
        [abs(g_period_fn(int(x) + 1) - g_period_fn(int(x))) for x in candidates]
    )
    if variability.sum() <= 0:
        probs = np.full(len(candidates), 1.0 / len(candidates))
    else:
        probs = variability / variability.sum()
    ids = np.arange(n)
    source.shuffle(ids)
    freqs: dict[int, int] = {}
    for item in ids[:support]:
        value = int(source.generator.choice(candidates, p=probs))
        freqs[int(item)] = value
    return _emit_frequencies(freqs, n, source)


def samples_from_pmf(
    pmf: Callable[[int], float],
    max_value: int,
    count: int,
    seed: int | RandomSource | None = None,
) -> list[int]:
    """Draw ``count`` samples from a discrete pmf on {0..max_value}
    (normalizing numerically); helper for likelihood experiments."""
    source = as_source(seed, "pmf_samples")
    probs = np.array([max(pmf(x), 0.0) for x in range(max_value + 1)], dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ValueError("pmf has no mass on the requested range")
    probs /= total
    return [int(x) for x in source.generator.choice(max_value + 1, size=count, p=probs)]


def sample_stream_from_pmf(
    pmf: Callable[[int], float],
    n: int,
    max_value: int,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """Each of the ``n`` coordinates gets an i.i.d. draw from the pmf."""
    values = samples_from_pmf(pmf, max_value, n, seed)
    stream = TurnstileStream(n)
    for item, value in enumerate(values):
        if value > 0:
            stream.append(StreamUpdate(item, value))
    return stream


# --------------------------------------------------------------------------
# The adversarial workload zoo (ROADMAP item 5): streams that stress the
# probabilistic guarantees instead of exercising the happy path.
# --------------------------------------------------------------------------

#: The heavy-tail sweep exponents: sub-critical (0.8, mass spread thin),
#: the canonical web-traffic skew (1.1), strongly concentrated (1.5), and
#: a near-degenerate head (2.0).
DEFAULT_ZIPF_SKEWS = (0.8, 1.1, 1.5, 2.0)


def zipf_sweep(
    n: int,
    total_mass: int,
    skews: Sequence[float] = DEFAULT_ZIPF_SKEWS,
    seed: int | RandomSource | None = None,
    turnstile_noise: float = 0.0,
) -> list[tuple[float, TurnstileStream]]:
    """Heavy-tailed Zipf workloads across a sweep of skew exponents.

    Returns ``[(skew, stream), ...]``; each stream draws from an
    independent child seed, so the sweep is reproducible as a unit.  The
    verifier (:mod:`repro.verify`) runs each guarantee across the whole
    sweep because sketch error distributions shift with the tail weight:
    small skews spread F2 across the tail (many borderline items), large
    skews concentrate it in a few giants (collision errors dominated by
    single items).
    """
    source = as_source(seed, "zipf_sweep")
    return [
        (
            float(skew),
            zipf_stream(
                n, total_mass, float(skew), source.child(f"skew{skew}"), turnstile_noise
            ),
        )
        for skew in skews
    ]


def deletion_storm_stream(
    n: int,
    support: int,
    magnitude: int,
    waves: int = 2,
    overshoot: int = 1,
    residue: int = 1,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """An all-deletion turnstile storm: every count is driven back through
    zero — and past it — repeatedly.

    Each wave inserts ``magnitude`` on every chosen item, deletes
    ``magnitude + overshoot`` (leaving the count *negative*), then restores
    to exactly zero.  After the waves, each item receives a final
    ``+-residue`` (alternating), so the net frequency vector is tiny and
    signed while the gross update volume is ``~3 * waves * support``
    updates of magnitude ``magnitude``.  Linear sketches must cancel all of
    it exactly; estimators that only exercise positive-delta paths (or
    Count-Min's one-sided min rule) break here, which is the point.
    """
    if support > n:
        raise ValueError("support cannot exceed the domain")
    if magnitude < 1 or overshoot < 0 or waves < 1:
        raise ValueError("magnitude >= 1, overshoot >= 0, waves >= 1 required")
    source = as_source(seed, "deletion_storm")
    ids = np.arange(n)
    source.shuffle(ids)
    chosen = [int(i) for i in ids[:support]]
    stream = TurnstileStream(n)

    def phase(delta: int) -> None:
        order = list(chosen)
        source.shuffle(order)
        for item in order:
            stream.append(StreamUpdate(item, delta))

    for _ in range(waves):
        phase(magnitude)
        phase(-(magnitude + overshoot))  # through zero, below it
        if overshoot:
            phase(overshoot)  # back to exactly zero
    if residue:
        order = list(chosen)
        source.shuffle(order)
        for rank, item in enumerate(order):
            stream.append(StreamUpdate(item, residue if rank % 2 == 0 else -residue))
    return stream


def distinct_flood_stream(
    n: int,
    magnitude: int = 1,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """An all-distinct flood: every item of the domain appears exactly once
    (at ``magnitude``), in random order.

    This is the pathological-cardinality workload for the CountSketch
    candidate pool: with more distinct items than ``pool`` entries the
    ``sample`` policy degrades identification to a uniform sample, and the
    ``evict-by-estimate`` fallback must keep memory bounded (see
    :class:`repro.sketch.countsketch.CountSketch`).
    """
    source = as_source(seed, "distinct_flood")
    ids = np.arange(n)
    source.shuffle(ids)
    stream = TurnstileStream(n)
    for item in ids:
        stream.append(StreamUpdate(int(item), magnitude))
    return stream


def collision_stream(
    victim: "CountSketch",
    n: int,
    target: int = 0,
    colliders: int = 64,
    mass: int = 32,
    target_mass: int = 1,
    seed: int | RandomSource | None = None,
    chunk: int = 1 << 16,
) -> TurnstileStream:
    """A hash-collision-seeking stream against a *specific* CountSketch.

    Scans the domain for the items whose
    :meth:`~repro.sketch.countsketch.CountSketch.collision_scores` against
    ``target`` are largest — items that land in ``target``'s bucket with an
    agreeing sign in many rows of *this instance's* tabulation — and piles
    ``mass`` on each of the ``colliders`` best.  The victim's median
    estimate of ``target`` (true count ``target_mass``) is then inflated by
    collision mass in most rows, defeating the median; a CountSketch with
    fresh hashes sees the same stream as ordinary skew and keeps the
    ``sqrt(F2/b)`` bound.  This is the "guarantees are probabilistic over
    hash choice" separation made executable.
    """
    if not 0 <= target < n:
        raise ValueError("target must lie in the domain")
    source = as_source(seed, "collision_stream")
    scores = np.empty(n, dtype=np.int64)
    for start in range(0, n, chunk):
        block = np.arange(start, min(start + chunk, n), dtype=np.int64)
        scores[start : start + block.shape[0]] = victim.collision_scores(block, target)
    scores[target] = np.iinfo(np.int64).min  # the target never attacks itself
    k = min(int(colliders), n - 1)
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.lexsort((top, -scores[top]))]  # deterministic order
    stream = TurnstileStream(n)
    stream.append(StreamUpdate(int(target), target_mass))
    order = [int(i) for i in top]
    source.shuffle(order)
    for item in order:
        stream.append(StreamUpdate(item, mass))
    return stream


def adaptive_adversarial_stream(
    n: int,
    victim: "CountSketch",
    rounds: int = 8,
    batch: int = 128,
    probe_mass: int = 16,
    boost_mass: int = 256,
    target: int | None = None,
    target_mass: int = 1,
    noise_support: int = 512,
    noise_magnitude: int = 8,
    seed: int | RandomSource | None = None,
) -> TurnstileStream:
    """A black-box adaptive adversary that interleaves queries, inserts,
    and deletes against a live victim sketch to corrupt one target item.

    Unlike :func:`collision_stream` (which reads the victim's hash tables
    directly), this adversary only uses the *query interface*.  After
    laying down ``noise_support`` items of background traffic (so the
    target's per-row values are diverse and the median is movable), it
    plants ``target`` with a tiny true count and probes: insert
    ``probe_mass`` on a fresh decoy, query ``victim.estimate(target)``,
    and keep the decoy's mass only if the estimate *rose* — evidence the
    decoy collides with the target in a median-pivotal row with an
    agreeing sign.  Non-colliding probes are retracted with a matching
    deletion, so the stream interleaves queries, inserts, and turnstile
    deletes.  Each round finishes by piling ``boost_mass`` on every
    collider found so far, which pushes the colliding rows upward and
    makes fresh rows pivotal for the next round of probes.

    The result: the attacked instance reports ``target`` (true count
    ``target_mass``) with a huge estimate — well past the oblivious
    ``3*sqrt(F2/b)`` bound and typically at the top of the
    tracked-candidate pool, displacing genuine heavy hitters — while a
    sketch with fresh hashes replaying the same stream sees the mass
    placement as random and keeps the advertised guarantee.

    The ``victim`` is mutated in place (it ingests the whole stream), so
    callers evaluate the attacked instance directly and replay the
    returned stream through fresh seeds for the contrast.
    """
    if rounds < 1 or batch < 1:
        raise ValueError("rounds and batch must be positive")
    if probe_mass < 1 or boost_mass < 0 or target_mass < 1:
        raise ValueError("probe_mass, target_mass >= 1 and boost_mass >= 0 required")
    source = as_source(seed, "adaptive_adversary")
    ids = np.arange(n)
    source.shuffle(ids)
    if target is None:
        target = int(ids[-1])
    decoy_ids = [int(i) for i in ids if int(i) != target]
    if noise_support + rounds * batch > len(decoy_ids):
        raise ValueError("domain too small for noise plus rounds * batch decoys")
    stream = TurnstileStream(n)

    def emit(item: int, delta: int) -> None:
        stream.append(StreamUpdate(item, delta))
        victim.update(item, delta)

    cursor = 0
    for item in decoy_ids[:noise_support]:  # diversify the rows first
        emit(item, int(source.integers(1, noise_magnitude + 1)))
    cursor += noise_support
    emit(int(target), int(target_mass))
    colliders: list[int] = []
    baseline = victim.estimate(int(target))
    for _ in range(rounds):
        fresh = decoy_ids[cursor : cursor + batch]
        cursor += batch
        for item in fresh:
            emit(item, probe_mass)
            moved = victim.estimate(int(target))  # the adaptive query
            if moved > baseline:  # pivotal, sign-agreeing collision
                colliders.append(item)
                baseline = moved
            else:
                emit(item, -probe_mass)  # retract: turnstile delete
        if boost_mass:
            for item in colliders:
                emit(item, boost_mass)
            baseline = victim.estimate(int(target))
    return stream
