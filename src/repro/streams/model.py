"""The turnstile streaming model of Section 1.2.

A stream of length ``m`` with domain ``[n]`` is a list of pairs
``(i_j, delta_j)`` with ``i_j in [n]`` (we use 0-based ids) and integer
``delta_j``.  The frequency vector has ``v_i = sum of delta_j over j with
i_j == i``.  The model promises ``|v_i| <= M`` for every prefix; algorithms
may read the stream ``p >= 1`` times in order.

:class:`TurnstileStream` stores updates explicitly so multi-pass algorithms
(the paper's Algorithm 1 and the DISJ reductions) can replay them, and
:class:`FrequencyVector` is the exact ground truth used by tests and by the
second pass of the 2-pass heavy-hitter algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class StreamUpdate:
    """One turnstile update ``(item, delta)``."""

    item: int
    delta: int

    def __post_init__(self) -> None:
        if self.item < 0:
            raise ValueError(f"item ids are nonnegative, got {self.item}")
        if self.delta == 0:
            raise ValueError("zero-delta updates are not allowed")


class FrequencyVector:
    """Sparse exact frequency vector ``V(D)`` over domain ``[n]``."""

    def __init__(self, domain_size: int, counts: Mapping[int, int] | None = None):
        if domain_size <= 0:
            raise ValueError("domain size must be positive")
        self.domain_size = int(domain_size)
        self._counts: Dict[int, int] = {}
        if counts:
            for item, value in counts.items():
                self[item] = value

    def __getitem__(self, item: int) -> int:
        self._check_item(item)
        return self._counts.get(item, 0)

    def __setitem__(self, item: int, value: int) -> None:
        self._check_item(item)
        value = int(value)
        if value == 0:
            self._counts.pop(item, None)
        else:
            self._counts[item] = value

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.domain_size:
            raise IndexError(f"item {item} outside domain [0, {self.domain_size})")

    def add(self, item: int, delta: int) -> None:
        self[item] = self[item] + delta

    def items(self) -> Iterator[tuple[int, int]]:
        """Nonzero (item, frequency) pairs."""
        return iter(self._counts.items())

    def support(self) -> List[int]:
        return list(self._counts.keys())

    def support_size(self) -> int:
        return len(self._counts)

    def max_abs(self) -> int:
        """The bound ``M`` realized by this vector (0 for the zero vector)."""
        return max((abs(v) for v in self._counts.values()), default=0)

    def f_moment(self, k: float) -> float:
        """Frequency moment ``F_k = sum |v_i|^k`` over nonzero entries."""
        return sum(abs(v) ** k for v in self._counts.values())

    def g_sum(self, g: Callable[[int], float], include_zeros: bool = False) -> float:
        """Exact ``g(V) = sum_i g(|v_i|)``.

        With ``include_zeros=True`` the ``n - support`` zero coordinates
        contribute ``g(0)`` each (the Appendix A setting where g(0) != 0).

        Summed in item order: the counts dict's insertion order depends on
        how the stream was ingested (scalar vs batch chunking), and float
        addition order must not leak into results the batch-equivalence
        contract declares identical.
        """
        total = sum(g(abs(self._counts[i])) for i in sorted(self._counts))
        if include_zeros:
            total += (self.domain_size - len(self._counts)) * g(0)
        return total

    def to_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        return (
            self.domain_size == other.domain_size and self._counts == other._counts
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrequencyVector(n={self.domain_size}, nnz={len(self._counts)})"


class TurnstileStream:
    """A materialized turnstile stream supporting multiple passes.

    Parameters
    ----------
    domain_size:
        ``n`` — item ids must lie in ``[0, n)``.
    updates:
        The update list; may also be appended to with :meth:`append`.
    magnitude_bound:
        The promise ``M``; when given, every prefix is checked to respect
        ``|v_i| <= M`` (the turnstile promise of Section 1.2).  ``None``
        skips prefix checking and reports the realized bound instead.
    """

    def __init__(
        self,
        domain_size: int,
        updates: Iterable[StreamUpdate] = (),
        magnitude_bound: int | None = None,
    ):
        if domain_size <= 0:
            raise ValueError("domain size must be positive")
        self.domain_size = int(domain_size)
        self.magnitude_bound = magnitude_bound
        self._updates: List[StreamUpdate] = []
        self._running = FrequencyVector(domain_size)
        self._arrays: tuple[np.ndarray, np.ndarray] | None = None
        for update in updates:
            self.append(update)

    def append(self, update: StreamUpdate) -> None:
        if not 0 <= update.item < self.domain_size:
            raise IndexError(
                f"item {update.item} outside domain [0, {self.domain_size})"
            )
        self._running.add(update.item, update.delta)
        if (
            self.magnitude_bound is not None
            and abs(self._running[update.item]) > self.magnitude_bound
        ):
            raise ValueError(
                f"turnstile promise violated: |v_{update.item}| = "
                f"{abs(self._running[update.item])} > M = {self.magnitude_bound}"
            )
        self._updates.append(update)

    def extend(self, updates: Iterable[StreamUpdate]) -> None:
        for update in updates:
            self.append(update)

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[StreamUpdate]:
        """One pass over the stream, in arrival order."""
        return iter(self._updates)

    @property
    def updates(self) -> Sequence[StreamUpdate]:
        return tuple(self._updates)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar view: ``(items, deltas)`` int64 arrays in arrival order.

        The arrays are cached (and rebuilt after appends), so repeated
        batch ingestion of the same stream pays the conversion once.
        Callers must not mutate the returned arrays.
        """
        if self._arrays is None or self._arrays[0].shape[0] != len(self._updates):
            count = len(self._updates)
            items = np.fromiter(
                (u.item for u in self._updates), dtype=np.int64, count=count
            )
            deltas = np.fromiter(
                (u.delta for u in self._updates), dtype=np.int64, count=count
            )
            self._arrays = (items, deltas)
        return self._arrays

    def iter_array_chunks(
        self, chunk_size: int = 4096
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Chunked columnar view: yields zero-copy ``(items, deltas)``
        slices of :meth:`as_arrays` covering the stream in arrival order."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        items, deltas = self.as_arrays()
        for start in range(0, items.shape[0], chunk_size):
            stop = start + chunk_size
            yield items[start:stop], deltas[start:stop]

    def frequency_vector(self) -> FrequencyVector:
        """Exact ``V(D)`` (a copy; mutating it does not affect the stream)."""
        return FrequencyVector(self.domain_size, self._running.to_dict())

    def realized_magnitude(self) -> int:
        return self._running.max_abs()

    def is_insertion_only(self) -> bool:
        """True when every delta is +1 (the lower bounds' restricted model)."""
        return all(u.delta == 1 for u in self._updates)

    def concat(self, other: "TurnstileStream") -> "TurnstileStream":
        """The stream obtained by playing ``self`` then ``other``.

        Used by the communication reductions where Alice's and Bob's
        portions are concatenated into one notional stream.
        """
        if other.domain_size != self.domain_size:
            raise ValueError("cannot concatenate streams over different domains")
        merged = TurnstileStream(self.domain_size, self._updates)
        merged.extend(other.updates)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TurnstileStream(n={self.domain_size}, m={len(self._updates)}, "
            f"M={self.realized_magnitude()})"
        )


def stream_from_frequencies(
    frequencies: Mapping[int, int],
    domain_size: int,
    chunk: int | None = None,
) -> TurnstileStream:
    """Build a stream realizing the given frequency vector.

    Each frequency is emitted as one update by default; ``chunk`` splits each
    frequency into bounded-size increments (e.g. ``chunk=1`` produces the
    insertion-only unary encoding used by the lower-bound reductions when
    frequencies are positive).
    """
    stream = TurnstileStream(domain_size)
    for item, value in frequencies.items():
        if value == 0:
            continue
        if chunk is None:
            stream.append(StreamUpdate(item, value))
            continue
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        sign = 1 if value > 0 else -1
        remaining = abs(value)
        while remaining > 0:
            step = min(chunk, remaining)
            stream.append(StreamUpdate(item, sign * step))
            remaining -= step
    return stream


def stream_from_samples(samples: Iterable[int], domain_size: int) -> TurnstileStream:
    """Insertion-only stream from i.i.d. samples (the Section 1.1.1 setting:
    each sample increments one coordinate of the frequency vector)."""
    stream = TurnstileStream(domain_size)
    for sample in samples:
        stream.append(StreamUpdate(int(sample), 1))
    return stream


def interleave(
    streams: Sequence[TurnstileStream], pattern: str = "roundrobin"
) -> TurnstileStream:
    """Merge several streams over the same domain into one.

    ``roundrobin`` interleaves updates; ``concat`` plays them back to back.
    Frequency vectors are identical either way (turnstile algorithms must be
    order-insensitive in distribution); tests use both orders to check that.
    """
    if not streams:
        raise ValueError("need at least one stream")
    domain = streams[0].domain_size
    if any(s.domain_size != domain for s in streams):
        raise ValueError("streams must share a domain")
    merged = TurnstileStream(domain)
    if pattern == "concat":
        for stream in streams:
            merged.extend(stream.updates)
        return merged
    if pattern == "roundrobin":
        iterators = [iter(s.updates) for s in streams]
        live = list(iterators)
        while live:
            still_live = []
            for it in live:
                try:
                    merged.append(next(it))
                    still_live.append(it)
                except StopIteration:
                    pass
            live = still_live
        return merged
    raise ValueError(f"unknown interleave pattern {pattern!r}")


def total_updates_bound(n: int, magnitude: int) -> int:
    """Crude bound on stream length for sizing experiments: n items each
    reaching magnitude M needs at most ``n * M`` unit updates."""
    return n * magnitude


def ell_p_norm(vector: FrequencyVector, p: float) -> float:
    """``(sum |v_i|^p)^{1/p}``; ``p=2`` is the F2^{1/2} used by CountSketch
    error guarantees."""
    if p <= 0:
        raise ValueError("p must be positive")
    return vector.f_moment(p) ** (1.0 / p)


def residual_f2(vector: FrequencyVector, k: int) -> float:
    """Residual second moment: F2 minus the k largest squared frequencies.

    This is the quantity controlling CountSketch tail error
    (Section 3.1: error <= eps * sqrt(F2^{res(k)}/ ... )).
    """
    squares = sorted((v * v for _, v in vector.items()), reverse=True)
    return float(sum(squares[k:]))
