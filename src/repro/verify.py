"""Statistical verification of the advertised (epsilon, delta) guarantees.

The paper's estimation guarantees are *probabilistic over the hash choice*:
for a fixed stream, a freshly seeded sketch errs past its bound with
probability at most delta.  This module makes that statement executable.
Each ``verify_*`` function replays one workload through many independently
seeded sketch instances, measures the observed error of every probe
against the advertised bound, and folds the samples into a
:class:`GuaranteeReport` — empirical failure rate, the configured delta it
must stay under, and percentiles of the *bound-normalized* error
(``observed / bound``, so 1.0 is the guarantee edge and the same scale
works for every sketch and workload).

Checked bounds (see ``docs/GUARANTEES.md`` for the paper mapping):

* CountSketch point queries — ``|est(i) - v_i| <= factor * sqrt(F2 / b)``
  per item, median over rows (Charikar et al.; the paper's Section 4
  heavy-hitter subroutine inherits this bound).
* Count-Min point queries — ``0 <= est(i) - v_i <= e * F1 / b`` on
  insertion-only streams (one-sided overestimate).
* GSum — ``|est - g_sum| <= epsilon * g_sum`` with probability
  ``1 - delta`` over seeds (Theorem 1.2's (g, epsilon)-SUM contract).

The verifier always draws *fresh* seeds, which is exactly why the
adversarial workloads in :mod:`repro.streams.generators` pass it: an
attacked instance is broken, but the guarantee never promised anything
about a sketch whose hash functions the adversary already probed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.gsum import GSumEstimator, exact_gsum
from repro.functions.base import GFunction
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch
from repro.streams.batching import aggregate_batch
from repro.streams.model import TurnstileStream
from repro.util.rng import RandomSource, as_source

__all__ = [
    "GuaranteeReport",
    "countmin_point_bound",
    "countsketch_point_bound",
    "probe_items",
    "verify_countmin",
    "verify_countsketch",
    "verify_gsum",
]


@dataclass(frozen=True)
class GuaranteeReport:
    """Empirical verdict on one (sketch, workload, bound) triple.

    ``samples`` counts individual error measurements (seeds x probes for
    point queries, one per seed for GSum); ``failures`` counts samples
    whose bound-normalized error exceeded 1.  The percentiles are over
    the normalized errors, so ``p99 <= 1.0`` reads "99% of measurements
    sat inside the guarantee".
    """

    sketch: str
    workload: str
    seeds: int
    samples: int
    failures: int
    delta: float
    p50: float
    p95: float
    p99: float
    max_error: float

    @property
    def failure_rate(self) -> float:
        return self.failures / self.samples if self.samples else 0.0

    @property
    def holds(self) -> bool:
        """Whether the empirical failure rate stays within delta."""
        return self.failure_rate <= self.delta

    def to_row(self) -> dict:
        """Flatten for the S5_ADVERSARIAL bench table."""
        return {
            "sketch": self.sketch,
            "workload": self.workload,
            "seeds": self.seeds,
            "samples": self.samples,
            "failure_rate": round(self.failure_rate, 6),
            "delta": self.delta,
            "holds": self.holds,
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
            "max_error": round(self.max_error, 6),
        }


def _report(
    sketch: str,
    workload: str,
    seeds: int,
    normalized: np.ndarray,
    delta: float,
) -> GuaranteeReport:
    p50, p95, p99 = np.percentile(normalized, [50.0, 95.0, 99.0])
    return GuaranteeReport(
        sketch=sketch,
        workload=workload,
        seeds=seeds,
        samples=int(normalized.shape[0]),
        failures=int(np.count_nonzero(normalized > 1.0)),
        delta=float(delta),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        max_error=float(np.max(normalized)),
    )


def countsketch_point_bound(
    stream: TurnstileStream, buckets: int, factor: float = 3.0
) -> float:
    """The advertised per-item CountSketch error: ``factor * sqrt(F2/b)``."""
    f2 = stream.frequency_vector().f_moment(2.0)
    return float(factor) * math.sqrt(f2 / buckets)


def countmin_point_bound(stream: TurnstileStream, buckets: int) -> float:
    """The advertised Count-Min overestimate on insertion-only streams:
    ``e * F1 / b``."""
    f1 = stream.frequency_vector().f_moment(1.0)
    return math.e * f1 / buckets


def probe_items(
    stream: TurnstileStream,
    probes: int,
    seed: int | RandomSource | None = None,
) -> np.ndarray:
    """Pick the items whose estimates get checked: the heaviest half (where
    heavy-hitter identification lives) plus a uniform sample of the rest of
    the support (where collision noise dominates)."""
    vector = stream.frequency_vector().to_dict()
    support = np.asarray(sorted(vector), dtype=np.int64)
    if support.shape[0] <= probes:
        return support
    counts = np.abs(np.asarray([vector[int(i)] for i in support]))
    heavy_take = probes // 2
    order = np.lexsort((support, -counts))
    heavy = support[order[:heavy_take]]
    rest = support[order[heavy_take:]]
    source = as_source(seed, "verify_probes")
    picked = rest[source.choice(rest.shape[0], probes - heavy_take, replace=False)]
    return np.sort(np.concatenate([heavy, picked]))


def _net_arrays(stream: TurnstileStream) -> tuple[np.ndarray, np.ndarray]:
    items, deltas = stream.as_arrays()
    return aggregate_batch(items, deltas)


def verify_countsketch(
    stream: TurnstileStream,
    workload: str,
    rows: int = 5,
    buckets: int = 512,
    seeds: int = 30,
    probes: int = 64,
    factor: float = 3.0,
    delta: float = 0.05,
    seed: int | RandomSource | None = 0,
    pool_policy: str = "sample",
) -> GuaranteeReport:
    """Check the CountSketch point-query bound across fresh hash seeds.

    Ingestion uses the net frequency vector (the sketch is linear, so the
    table is identical to a scalar replay), letting a 30-seed trial stay
    cheap even on deletion storms.
    """
    source = as_source(seed, "verify_countsketch")
    unique, net = _net_arrays(stream)
    probe = probe_items(stream, probes, source.child("probes"))
    vector = stream.frequency_vector().to_dict()
    truth = np.asarray([vector.get(int(i), 0) for i in probe], dtype=np.float64)
    bound = countsketch_point_bound(stream, buckets, factor)
    if bound == 0.0:  # zero net vector: any nonzero estimate is a failure
        bound = np.finfo(np.float64).tiny
    normalized = np.empty((seeds, probe.shape[0]), dtype=np.float64)
    for trial in range(seeds):
        sketch = CountSketch(
            rows,
            buckets,
            seed=source.child(f"trial{trial}"),
            pool_policy=pool_policy,
        )
        sketch.update_batch(unique, net)
        estimates = sketch.estimate_batch(probe)
        normalized[trial] = np.abs(estimates - truth) / bound
    return _report("countsketch", workload, seeds, normalized.ravel(), delta)


def verify_countmin(
    stream: TurnstileStream,
    workload: str,
    rows: int = 5,
    buckets: int = 512,
    seeds: int = 30,
    probes: int = 64,
    delta: float = 0.02,
    seed: int | RandomSource | None = 0,
) -> GuaranteeReport:
    """Check the Count-Min one-sided bound across fresh hash seeds.

    Only valid on streams with nonnegative deltas (the min rule's
    guarantee does not survive deletions — that failure is itself covered
    by the deletion-storm tests, not this verifier)."""
    _, raw_deltas = stream.as_arrays()
    if raw_deltas.shape[0] and int(raw_deltas.min()) < 0:
        raise ValueError(
            "the Count-Min bound e*F1/b only holds without deletions; "
            "deletion workloads are out of contract"
        )
    source = as_source(seed, "verify_countmin")
    unique, net = _net_arrays(stream)
    probe = probe_items(stream, probes, source.child("probes"))
    vector = stream.frequency_vector().to_dict()
    truth = np.asarray([vector.get(int(i), 0) for i in probe], dtype=np.float64)
    bound = countmin_point_bound(stream, buckets)
    normalized = np.empty((seeds, probe.shape[0]), dtype=np.float64)
    for trial in range(seeds):
        sketch = CountMinSketch(rows, buckets, seed=source.child(f"trial{trial}"))
        sketch.update_batch(unique, net)
        estimates = np.asarray([sketch.estimate(int(i)) for i in probe])
        # One-sided: underestimates are impossible; normalize the excess.
        normalized[trial] = (estimates - truth) / bound
    return _report("countmin", workload, seeds, normalized.ravel(), delta)


def verify_gsum(
    stream: TurnstileStream,
    g: GFunction,
    workload: str,
    epsilon: float = 0.25,
    seeds: int = 20,
    delta: float = 0.25,
    seed: int | RandomSource | None = 0,
    estimator: Callable[..., GSumEstimator] | None = None,
    **estimator_kwargs,
) -> GuaranteeReport:
    """Check the (g, epsilon)-SUM relative-error contract across seeds.

    One sample per seed: ``|estimate - g_sum| / (epsilon * g_sum)``, so a
    normalized error above 1 is a trial where the advertised relative
    error was exceeded.  ``estimator_kwargs`` flow into
    :class:`~repro.core.gsum.GSumEstimator` (e.g. ``passes=2``,
    ``cs_pool_policy="evict-by-estimate"``)."""
    source = as_source(seed, "verify_gsum")
    truth = exact_gsum(stream, g)
    if truth == 0.0:
        raise ValueError("g_sum of the workload is zero; relative error undefined")
    make = estimator or GSumEstimator
    normalized = np.empty(seeds, dtype=np.float64)
    for trial in range(seeds):
        est = make(
            g,
            stream.domain_size,
            epsilon=epsilon,
            seed=source.child(f"trial{trial}"),
            **estimator_kwargs,
        )
        result = est.run(stream)
        normalized[trial] = abs(result.estimate - truth) / (epsilon * abs(truth))
    return _report("gsum", workload, seeds, normalized, delta)
