"""Information-complexity accounting for ShortLinearCombination (App. C).

Proposition 46/Theorem 48 lower-bound (u,d)-DIST through Hellinger
distances between *transcript distributions* of a one-way protocol.  For
the canonical protocol — a signed counter read modulo ``a`` (exactly the
Prop. 49 detector's per-piece message) — those distributions are computable
in closed form: a piece holding ``k`` items of magnitude ``b`` transmits
``(sum of k independent +-b) mod a``, a length-``a`` probability vector
obtained by k exact convolutions.

This module computes those distributions and the induced squared Hellinger
distance between the needle-free and needle-carrying worlds,

    adv(k) = h^2( D_k ,  D_k * delta_{+-d} ),

which is the per-piece statistical advantage any decision rule can extract.
The Appendix-C story then reads off quantitatively:

* ``adv(k) = 0`` would make the problem impossible; minimality of q keeps
  the supports disjoint for small k, so adv is large exactly when pieces
  are lightly loaded;
* the number of pieces needed scales like ``1/adv(k)`` — evaluating adv at
  the load ``k ~ n/t`` reproduces the Omega(n/q^2) tradeoff measured by
  experiment E6 from pure information accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


def hellinger_squared(p: np.ndarray, q: np.ndarray) -> float:
    """``h^2(p, q) = 1 - sum sqrt(p_i q_i)`` for probability vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must share a support")
    if not (math.isclose(p.sum(), 1.0, abs_tol=1e-9) and math.isclose(q.sum(), 1.0, abs_tol=1e-9)):
        raise ValueError("inputs must be probability vectors")
    return float(1.0 - np.sqrt(p * q).sum())


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    return float(0.5 * np.abs(np.asarray(p, float) - np.asarray(q, float)).sum())


def signed_step_distribution(magnitude: int, modulus: int) -> np.ndarray:
    """Distribution of ``+-magnitude mod modulus`` (one item's message)."""
    dist = np.zeros(modulus)
    dist[magnitude % modulus] += 0.5
    dist[(-magnitude) % modulus] += 0.5
    return dist


def convolve_mod(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Cyclic convolution: distribution of the sum of two independent
    residues."""
    modulus = len(p)
    out = np.zeros(modulus)
    for r, mass in enumerate(p):
        if mass:
            out += mass * np.roll(q, r)
    return out


def piece_message_distribution(
    magnitude: int, modulus: int, load: int
) -> np.ndarray:
    """Distribution of ``(sum of `load` independent +-magnitude) mod a`` —
    the needle-free transcript of a piece with `load` b-items."""
    if load < 0:
        raise ValueError("load must be nonnegative")
    dist = np.zeros(modulus)
    dist[0] = 1.0
    step = signed_step_distribution(magnitude, modulus)
    for _ in range(load):
        dist = convolve_mod(dist, step)
    return dist


@dataclass(frozen=True)
class PieceAdvantage:
    """Per-piece distinguishing advantage at a given load."""

    load: int
    hellinger_sq: float
    tv_distance: float

    @property
    def pieces_needed(self) -> float:
        """~1/h^2 pieces give constant overall advantage (independent
        evidence compounds additively in h^2)."""
        if self.hellinger_sq <= 0:
            return math.inf
        return 1.0 / self.hellinger_sq


def needle_advantage(
    b: int, a: int, d: int, load: int
) -> PieceAdvantage:
    """Advantage of one piece's transcript at distinguishing 'needle
    present' (one extra +-d item) from 'needle absent', with `load`
    b-items of noise.  (Items of magnitude a vanish mod a and are
    irrelevant.)"""
    base = piece_message_distribution(b, a, load)
    with_needle = convolve_mod(base, signed_step_distribution(d, a))
    return PieceAdvantage(
        load=load,
        hellinger_sq=hellinger_squared(base, with_needle),
        tv_distance=total_variation(base, with_needle),
    )


def advantage_curve(
    b: int, a: int, d: int, loads: List[int]
) -> List[PieceAdvantage]:
    return [needle_advantage(b, a, d, load) for load in loads]


def information_pieces_estimate(
    b: int, a: int, d: int, n_items: int, target_load: int | None = None
) -> Dict[str, float]:
    """The information-theoretic sizing: choose the piece load k (default:
    the load at which adv(k) ~ 1/2 of its k=0 value), then
    t = n_items / k pieces with constant per-piece advantage at the needle
    piece — the quantity experiment E6 measures operationally."""
    if target_load is None:
        base = needle_advantage(b, a, d, 0).hellinger_sq
        target_load = 0
        for k in range(0, max(4, n_items)):
            if needle_advantage(b, a, d, k).hellinger_sq < 0.5 * base:
                break
            target_load = k
            if k > 512:
                break
        target_load = max(target_load, 1)
    adv = needle_advantage(b, a, d, target_load)
    return {
        "load": float(target_load),
        "hellinger_sq": adv.hellinger_sq,
        "pieces": n_items / float(target_load),
    }
