"""Communication lower bounds: problems, reductions, empirical harness."""

from repro.commlower.adversary import (
    AdversaryReport,
    TrialOutcome,
    required_error_for_distinguishing,
    run_adversary,
)
from repro.commlower.problems import (
    DisjIndInstance,
    DisjInstance,
    DistInstance,
    IndexInstance,
)
from repro.commlower.protocols import (
    ProtocolStats,
    SketchMessageProtocol,
    amplification_curve,
    majority_amplify,
)
from repro.commlower.reductions import (
    ReductionCase,
    disj_drop_reduction,
    disj_jump_reduction,
    disjind_jump_reduction,
    index_drop_reduction,
    index_predictability_reduction,
)

__all__ = [
    "DisjIndInstance",
    "DisjInstance",
    "DistInstance",
    "IndexInstance",
    "ReductionCase",
    "disj_drop_reduction",
    "disj_jump_reduction",
    "disjind_jump_reduction",
    "index_drop_reduction",
    "index_predictability_reduction",
    "AdversaryReport",
    "TrialOutcome",
    "required_error_for_distinguishing",
    "run_adversary",
    "ProtocolStats",
    "SketchMessageProtocol",
    "amplification_curve",
    "majority_amplify",
]
