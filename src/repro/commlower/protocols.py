"""Executable communication protocols (Section 3.1, Appendix B).

The lower bounds reason about one-way protocols whose message is a
streaming algorithm's memory.  This module makes those protocols runnable:

* :class:`SketchMessageProtocol` — the generic reduction protocol: Alice
  streams her portion into a sketch, "sends" the sketch (message size =
  its counters), Bob finishes the stream and outputs a decision.  Running
  it on INDEX instances realizes the Lemma 23/25 protocols literally.
* :func:`majority_amplify` — the Theorem 44 device: run ell independent
  copies of a protocol and majority-vote, driving error to n^-2 with an
  O(log n) message blow-up (used to lift DISJ(n, t+1) hardness to one-way
  DISJ+IND).
* :class:`ProtocolStats` — success counts and message sizes, so tests and
  benches can verify both correctness *and* the communication accounting
  that the lower bounds charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.commlower.problems import IndexInstance
from repro.commlower.reductions import ReductionCase
from repro.core.gsum import GSumEstimator
from repro.functions.base import GFunction
from repro.util.rng import RandomSource, as_source


@dataclass
class ProtocolStats:
    """Outcome bookkeeping across protocol runs."""

    successes: int = 0
    failures: int = 0
    message_counters: List[int] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return self.successes + self.failures

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    @property
    def max_message(self) -> int:
        return max(self.message_counters, default=0)

    def record(self, correct: bool, message_size: int) -> None:
        if correct:
            self.successes += 1
        else:
            self.failures += 1
        self.message_counters.append(message_size)


class SketchMessageProtocol:
    """One-way protocol for INDEX through a g-SUM reduction.

    Alice holds set A, Bob holds index b.  Alice builds her portion of the
    notional stream (every member of A at frequency ``big``), runs the
    estimator on it, and sends the estimator (the message).  Bob appends
    ``small`` copies of his index, reads off the estimate, and declares
    "b in A" when the estimate is closer to the intersecting value.

    ``estimator_factory(domain, rng)`` supplies the streaming algorithm;
    its ``space_counters`` is the message size the lower bound charges.
    """

    def __init__(
        self,
        g: GFunction,
        small: int,
        big: int,
        estimator_factory: Callable[[int, RandomSource], GSumEstimator],
    ):
        if small >= big:
            raise ValueError("need small < big (the Lemma 23 shape)")
        self.g = g
        self.small = int(small)
        self.big = int(big)
        self._factory = estimator_factory

    def _exact_values(self, instance: IndexInstance) -> tuple[float, float]:
        members = len(instance.alice_set)
        yes = (members - 1) * self.g(self.big) + self.g(self.big + self.small)
        no = members * self.g(self.big) + self.g(self.small)
        return yes, no

    def run(self, instance: IndexInstance, rng: RandomSource) -> tuple[bool, int]:
        """One execution; returns (bob's answer, message size in counters)."""
        domain = instance.n + 1
        estimator = self._factory(domain, rng)
        # --- Alice's turn: her half of the stream ---
        for item in sorted(instance.alice_set):
            estimator.update(item, self.big)
        message_size = estimator.space_counters
        # --- the message crosses the wire (same object, by construction) ---
        # --- Bob's turn ---
        estimator.update(instance.bob_index, self.small)
        estimate = estimator.estimate()
        yes, no = self._exact_values(instance)
        answer = abs(estimate - yes) <= abs(estimate - no)
        return answer, message_size

    def evaluate(
        self,
        trials: int,
        n: int,
        seed: int | RandomSource | None = None,
    ) -> ProtocolStats:
        source = as_source(seed, "protocol")
        stats = ProtocolStats()
        for t in range(trials):
            instance = IndexInstance.random(
                n, intersecting=t % 2 == 0, seed=source.child(f"inst{t}").seed
            )
            answer, size = self.run(instance, source.child(f"run{t}"))
            stats.record(answer == instance.answer, size)
        return stats


def majority_amplify(
    run_once: Callable[[RandomSource], bool],
    copies: int,
    rng: RandomSource,
) -> bool:
    """Theorem 44's amplification: ell independent copies, majority vote.

    ``run_once(rng)`` returns whether a single copy answered correctly; the
    majority answer is correct whenever more than half the copies are.
    With per-copy success 2/3, the Chernoff bound drives the majority's
    failure below ``exp(-copies/36)``.
    """
    if copies < 1:
        raise ValueError("need at least one copy")
    correct = sum(int(run_once(rng.child(f"copy{c}"))) for c in range(copies))
    return correct * 2 > copies


def amplification_curve(
    per_copy_success: float,
    copies_list: Sequence[int],
    trials: int,
    seed: int | RandomSource | None = None,
) -> List[dict]:
    """Empirical majority-success vs copies for a Bernoulli 'protocol' —
    the clean Theorem 44 calculation, testable against the Chernoff bound."""
    if not 0 < per_copy_success < 1:
        raise ValueError("per-copy success must be in (0,1)")
    source = as_source(seed, "amplify")
    rows = []
    for copies in copies_list:
        wins = 0
        for t in range(trials):
            votes = source.generator.random(copies) < per_copy_success
            wins += int(votes.sum() * 2 > copies)
        rows.append(
            {
                "copies": copies,
                "majority_success": wins / trials,
                "chernoff_bound": 1.0
                - math.exp(-2 * copies * max(per_copy_success - 0.5, 0.0) ** 2),
            }
        )
    return rows


def reduction_protocol_message_bound(case: ReductionCase, bits_per_counter: int = 64) -> int:
    """The communication the reduction charges: Alice's message must carry
    the whole algorithm state; in our accounting, counters x word size."""
    return bits_per_counter * max(
        len(case.stream_yes), len(case.stream_no)
    )  # loose upper bound used only for reporting
