"""Empirical hardness harness.

The lower bounds say: *any* small-space algorithm fed the reduction streams
could decide INDEX/DISJ, contradicting communication complexity — so a
small-space algorithm's error on those streams must be at least half the
gap.  This harness measures that directly: run a bounded-space estimator on
matched yes/no reduction streams, decide by proximity to the two exact
values, and report the distinguishing accuracy and error statistics.

For intractable functions at small space, accuracy hovers near chance
and/or the relative error exceeds the gap (experiment E3).  For tractable
functions the *reduction itself* degenerates (the gap vanishes relative to
the total), which is also visible in the report.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, List

from repro.commlower.reductions import ReductionCase
from repro.util.rng import RandomSource, as_source


@dataclass(frozen=True)
class TrialOutcome:
    estimate_yes: float
    estimate_no: float
    exact_yes: float
    exact_no: float
    decided_yes_correctly: bool
    decided_no_correctly: bool

    @property
    def error_yes(self) -> float:
        return abs(self.estimate_yes - self.exact_yes) / max(abs(self.exact_yes), 1e-300)

    @property
    def error_no(self) -> float:
        return abs(self.estimate_no - self.exact_no) / max(abs(self.exact_no), 1e-300)


@dataclass
class AdversaryReport:
    """Aggregate over trials of one (function, reduction, space) setting."""

    name: str
    trials: List[TrialOutcome]
    relative_gap: float
    space_counters: int

    @property
    def distinguishing_accuracy(self) -> float:
        """Fraction of correct yes/no decisions (0.5 = chance)."""
        total = 2 * len(self.trials)
        correct = sum(
            int(t.decided_yes_correctly) + int(t.decided_no_correctly)
            for t in self.trials
        )
        return correct / total if total else 0.0

    @property
    def median_error(self) -> float:
        errors = [e for t in self.trials for e in (t.error_yes, t.error_no)]
        return statistics.median(errors) if errors else math.nan

    @property
    def max_error(self) -> float:
        errors = [e for t in self.trials for e in (t.error_yes, t.error_no)]
        return max(errors) if errors else math.nan

    def as_row(self) -> dict:
        return {
            "reduction": self.name,
            "relative_gap": round(self.relative_gap, 4),
            "accuracy": round(self.distinguishing_accuracy, 3),
            "median_error": round(self.median_error, 4),
            "space": self.space_counters,
        }


def _decide(estimate: float, exact_yes: float, exact_no: float) -> bool:
    """True = 'yes' decision: the estimate is closer to the yes value."""
    return abs(estimate - exact_yes) <= abs(estimate - exact_no)


def run_adversary(
    case_factory: Callable[[RandomSource], ReductionCase],
    estimator_factory: Callable[[int, RandomSource], object],
    trials: int = 8,
    seed: int | RandomSource | None = None,
) -> AdversaryReport:
    """Grade an estimator against a reduction.

    ``case_factory(rng)`` builds a fresh matched pair; ``estimator_factory
    (domain_size, rng)`` builds a fresh estimator exposing ``process(stream)``
    and ``estimate()`` (a :class:`repro.core.gsum.GSumEstimator` works; for
    2-pass estimators ``run`` semantics are applied automatically).
    """
    source = as_source(seed, "adversary")
    outcomes: List[TrialOutcome] = []
    gaps: List[float] = []
    space = 0
    for trial in range(trials):
        case = case_factory(source.child(f"case{trial}"))
        gaps.append(case.relative_gap)
        estimates = []
        for tag, stream in (("yes", case.stream_yes), ("no", case.stream_no)):
            estimator = estimator_factory(
                stream.domain_size, source.child(f"est{trial}/{tag}")
            )
            runner = getattr(estimator, "run", None)
            if runner is not None:
                result = runner(stream, exact=False)
                estimates.append(result.estimate)
                space = max(space, result.space_counters)
            else:
                estimator.process(stream)
                estimates.append(estimator.estimate())
                space = max(space, getattr(estimator, "space_counters", 0))
        est_yes, est_no = estimates
        outcomes.append(
            TrialOutcome(
                est_yes,
                est_no,
                case.gsum_yes,
                case.gsum_no,
                decided_yes_correctly=_decide(est_yes, case.gsum_yes, case.gsum_no),
                decided_no_correctly=not _decide(est_no, case.gsum_yes, case.gsum_no),
            )
        )
    return AdversaryReport(
        name=case.name,
        trials=outcomes,
        relative_gap=statistics.median(gaps),
        space_counters=space,
    )


def required_error_for_distinguishing(case: ReductionCase) -> float:
    """The error threshold below which a (1 +- eps) estimator decides the
    instance: eps < gap / (2 + gap) suffices (both intervals separate)."""
    gap = case.relative_gap
    return gap / (2.0 + gap)
