"""Communication problems underlying the lower bounds (Section 3.1, App. B/C).

Instances are concrete objects with known answers so the reduction harness
can grade a streaming algorithm's implied protocol:

* :class:`IndexInstance` — INDEX(n): Alice holds A subseteq [n], Bob holds
  b in [n]; decide b in A.  One-way complexity Omega(n).
* :class:`DisjInstance` — DISJ(n, t): t players with pairwise-disjoint or
  uniquely-intersecting sets.  Complexity Omega(n/t).
* :class:`DisjIndInstance` — DISJ+IND(n, t): t set players plus an index
  player holding a singleton.  One-way complexity Omega(n/(t log n))
  (Theorem 44).
* :class:`DistInstance` — (u, d)-DIST (Definition 50): frequency vector in
  V0 = {u_1..u_r, 0}^n (with signs) or V1 = one coordinate replaced by +-d.
  Complexity Omega(n/q^2) (Theorem 51).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from repro.util.rng import RandomSource, as_source


@dataclass(frozen=True)
class IndexInstance:
    """INDEX(n): does Bob's index lie in Alice's set?"""

    n: int
    alice_set: FrozenSet[int]
    bob_index: int

    @property
    def answer(self) -> bool:
        return self.bob_index in self.alice_set

    @classmethod
    def random(
        cls,
        n: int,
        intersecting: bool | None = None,
        density: float = 0.5,
        seed: int | RandomSource | None = None,
    ) -> "IndexInstance":
        source = as_source(seed, "index")
        members = frozenset(
            int(i) for i in range(n) if source.random() < density
        ) or frozenset({0})
        if intersecting is None:
            intersecting = bool(source.integers(0, 2))
        if intersecting:
            b = int(source.choice(sorted(members)))
        else:
            complement = sorted(set(range(n)) - members)
            if not complement:
                members = frozenset(sorted(members)[:-1])
                complement = sorted(set(range(n)) - members)
            b = int(source.choice(complement))
        return cls(n, members, b)


@dataclass(frozen=True)
class DisjInstance:
    """DISJ(n, t) under the unique-intersection promise."""

    n: int
    sets: Tuple[FrozenSet[int], ...]
    common_element: int | None  # None <=> disjoint instance

    @property
    def answer(self) -> bool:
        """True when the sets intersect."""
        return self.common_element is not None

    @classmethod
    def random(
        cls,
        n: int,
        t: int,
        intersecting: bool | None = None,
        load: float = 0.8,
        seed: int | RandomSource | None = None,
    ) -> "DisjInstance":
        """Partition a `load` fraction of [n] among the t players (ensuring
        pairwise disjointness), optionally planting one common element."""
        if t < 2:
            raise ValueError("DISJ needs at least two players")
        source = as_source(seed, "disj")
        if intersecting is None:
            intersecting = bool(source.integers(0, 2))
        universe = list(range(n))
        source.shuffle(universe)
        usable = universe[: max(t, int(load * n))]
        common = usable[-1] if intersecting else None
        pool = usable[:-1] if intersecting else usable
        buckets: List[set[int]] = [set() for _ in range(t)]
        for rank, item in enumerate(pool):
            buckets[rank % t].add(item)
        if common is not None:
            for bucket in buckets:
                bucket.add(common)
        return cls(n, tuple(frozenset(b) for b in buckets), common)


@dataclass(frozen=True)
class DisjIndInstance:
    """DISJ+IND(n, t): t set players plus a final index player whose set is
    the singleton {index}."""

    n: int
    sets: Tuple[FrozenSet[int], ...]
    index: int
    common_element: int | None

    @property
    def answer(self) -> bool:
        return self.common_element is not None

    @classmethod
    def random(
        cls,
        n: int,
        t: int,
        intersecting: bool | None = None,
        load: float = 0.8,
        seed: int | RandomSource | None = None,
    ) -> "DisjIndInstance":
        source = as_source(seed, "disjind")
        if intersecting is None:
            intersecting = bool(source.integers(0, 2))
        base = DisjInstance.random(n, t, intersecting, load, source.child("base"))
        if intersecting:
            index = base.common_element
            common = base.common_element
        else:
            # Index element intersects none of the sets.
            used = set().union(*base.sets) if base.sets else set()
            free = sorted(set(range(n)) - used)
            index = int(source.choice(free)) if free else 0
            common = None
        assert index is not None
        return cls(n, base.sets, int(index), common)


@dataclass(frozen=True)
class DistInstance:
    """(u, d)-DIST: planted frequency vector (Definition 50).

    ``frequencies`` maps item -> signed frequency; ``needle_item`` is the
    coordinate carrying +-d in the V1 case (None in the V0 case).
    """

    n: int
    allowed: Tuple[int, ...]
    target: int
    frequencies: dict[int, int] = field(hash=False)
    needle_item: int | None = None

    @property
    def answer(self) -> bool:
        """True when the needle d is present (v in V1)."""
        return self.needle_item is not None

    @classmethod
    def random(
        cls,
        n: int,
        allowed: Sequence[int],
        target: int,
        present: bool | None = None,
        fill: float = 0.8,
        seed: int | RandomSource | None = None,
    ) -> "DistInstance":
        source = as_source(seed, "dist_instance")
        if present is None:
            present = bool(source.integers(0, 2))
        magnitudes = sorted({abs(int(u)) for u in allowed if u != 0})
        freqs: dict[int, int] = {}
        for item in range(n):
            if source.random() < fill:
                magnitude = int(source.choice(magnitudes))
                sign = 1 if source.integers(0, 2) else -1
                freqs[item] = sign * magnitude
        needle = None
        if present:
            needle = int(source.integers(0, n))
            sign = 1 if source.integers(0, 2) else -1
            freqs[needle] = sign * abs(int(target))
        return cls(n, tuple(magnitudes), abs(int(target)), freqs, needle)
