"""Stream reductions from communication problems (Lemmas 23-25, 27, 28).

Each builder realizes one proof's notional stream for a *matched pair* of
instances (intersecting vs disjoint, identical otherwise), returning a
:class:`ReductionCase` with both streams, their exact g-SUMs, and the
relative gap the proof exploits.  A streaming algorithm with relative error
below half the gap decides the communication problem through the reduction
— exactly how each lemma converts communication bounds into space bounds,
and how :mod:`repro.commlower.adversary` grades estimators empirically.

The builders construct the canonical frequency profiles from the proofs:

* Lemma 23 (INDEX, not slow-dropping): ``|A|`` coordinates at y plus one at
  x (disjoint) vs ``|A|-1`` at y plus one at x+y (intersecting), with
  ``g(x) >= y^alpha g(y)``.
* Lemma 25 (INDEX, not predictable): ``|A|`` coordinates at y plus one at x
  vs ``|A|-1`` at y and one at x+y, with y << x, ``x+y`` outside
  ``delta_eps(g, x)``, and ``x^gamma g(y) < g(x)``.
* Lemma 24 (DISJ+IND, not slow-jumping): n' coordinates at x plus one at
  r = y - s x (disjoint) vs n'-s at x and one at y (intersecting).
* Lemma 27 (2-player DISJ, not slow-dropping, multi-pass): base profile of
  coordinates at x+y and y; the pair differs by {one at x, one at y} vs
  {one at x+y}.
* Lemma 28 (DISJ(n,t), not slow-jumping, multi-pass): n' coordinates at x
  (disjoint) vs n'-t at x plus one at y (intersecting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.commlower.problems import DisjIndInstance, DisjInstance, IndexInstance
from repro.functions.base import GFunction
from repro.streams.model import StreamUpdate, TurnstileStream


@dataclass(frozen=True)
class ReductionCase:
    """Matched yes/no streams and the gap driving the lower bound."""

    name: str
    stream_yes: TurnstileStream
    stream_no: TurnstileStream
    gsum_yes: float
    gsum_no: float

    @property
    def relative_gap(self) -> float:
        base = max(min(abs(self.gsum_yes), abs(self.gsum_no)), 1e-300)
        return abs(self.gsum_yes - self.gsum_no) / base

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.gsum_yes + self.gsum_no)


def _profile_stream(profile: dict[int, int], domain: int) -> TurnstileStream:
    stream = TurnstileStream(domain)
    for item in sorted(profile):
        if profile[item] != 0:
            stream.append(StreamUpdate(item, profile[item]))
    return stream


def _profile_gsum(g: GFunction, profile: dict[int, int]) -> float:
    return sum(g(abs(v)) for v in profile.values())


def _case(
    name: str,
    g: GFunction,
    yes_profile: dict[int, int],
    no_profile: dict[int, int],
) -> ReductionCase:
    domain = max(list(yes_profile) + list(no_profile), default=0) + 1
    return ReductionCase(
        name,
        _profile_stream(yes_profile, domain),
        _profile_stream(no_profile, domain),
        _profile_gsum(g, yes_profile),
        _profile_gsum(g, no_profile),
    )


def index_drop_reduction(
    g: GFunction,
    instance: IndexInstance,
    small_freq: int,
    big_freq: int,
) -> ReductionCase:
    """Lemma 23: Alice's members get frequency ``big_freq`` (y); Bob adds
    ``small_freq`` (x) copies of his index, where ``g(x) >= y^alpha g(y)``.
    """
    x, y = small_freq, big_freq
    if x >= y:
        raise ValueError("need small_freq < big_freq (x < y)")
    members = sorted(instance.alice_set)
    yes = {item: y for item in members}
    no = {item: y for item in members}
    if instance.bob_index in instance.alice_set:
        plant = instance.bob_index
    else:
        plant = members[0]
    # Intersecting: Bob's x lands on a member -> x + y there.
    yes[plant] = x + y
    # Disjoint: Bob's x lands on a fresh coordinate.
    fresh = instance.n
    no[fresh] = x
    return _case("index/slow-dropping", g, yes, no)


def index_predictability_reduction(
    g: GFunction,
    instance: IndexInstance,
    x: int,
    y: int,
) -> ReductionCase:
    """Lemma 25: Alice's members get frequency ``y`` (small); Bob adds ``x``
    (large) copies, with y in [1, x^{1-gamma}), x+y outside delta_eps(g,x),
    and ``x^gamma g(y) < g(x)``."""
    if y >= x:
        raise ValueError("predictability reduction needs y < x")
    members = sorted(instance.alice_set)
    yes = {item: y for item in members}
    no = {item: y for item in members}
    plant = (
        instance.bob_index if instance.bob_index in instance.alice_set else members[0]
    )
    yes[plant] = x + y
    no[instance.n] = x
    return _case("index/predictability", g, yes, no)


def disjind_jump_reduction(
    g: GFunction,
    instance: DisjIndInstance,
    x: int,
    y: int,
) -> ReductionCase:
    """Lemma 24: with ``s = floor(y/x)`` and ``r = y - s x``, the disjoint
    profile is n' coordinates at x plus one at r; the intersecting profile
    stacks s of the x's (plus the index player's r) onto one coordinate,
    reaching exactly y."""
    if x > y:
        raise ValueError("need x <= y")
    s = max(1, y // x)
    r = y - s * x
    elements = sorted(set().union(*instance.sets)) if instance.sets else []
    n_prime = len(elements)
    if n_prime < s + 1:
        raise ValueError(
            f"instance too small: need at least s+1={s + 1} set elements, got {n_prime}"
        )
    target = (
        instance.common_element
        if instance.common_element is not None
        else elements[0]
    )
    rest = [e for e in elements if e != target]
    yes = {item: x for item in rest}
    yes[target] = y  # s stacked x's + the remainder r
    no = {item: x for item in elements}
    fresh = instance.n
    if r > 0:
        no[fresh] = r
    return _case("disj+ind/slow-jumping", g, yes, no)


def disj_drop_reduction(
    g: GFunction,
    instance: DisjInstance,
    x: int,
    y: int,
) -> ReductionCase:
    """Lemma 27: the multi-pass drop reduction.  Both profiles share
    ``|S1| - 1`` coordinates at x+y and a floor of coordinates at y; they
    differ on the shielded coordinate: {x and y on separate ids} when the
    sets intersect vs {x+y on one id} when disjoint."""
    if len(instance.sets) < 2:
        raise ValueError("need a 2-player DISJ instance")
    s1, s2 = instance.sets[0], instance.sets[1]
    shared = sorted(s1)
    if not shared:
        raise ValueError("player 1's set is empty")
    floor_items = sorted(set(range(instance.n)) - set(s1) - set(s2))
    base: dict[int, int] = {}
    for item in shared[1:]:
        base[item] = x + y
    for item in floor_items:
        base[item] = y
    pivot = shared[0]
    yes = dict(base)
    yes[pivot] = x  # S2 shields the common element from the +y
    yes[instance.n] = y  # ...and contributes y to a fresh id instead
    no = dict(base)
    no[pivot] = x + y
    return _case("disj/slow-dropping-multipass", g, yes, no)


def disj_jump_reduction(
    g: GFunction,
    instance: DisjInstance,
    x: int,
    y: int,
) -> ReductionCase:
    """Lemma 28: t = ceil(y/x) players each insert x copies (the last
    inserts y - (t-1)x).  Disjoint: every set element sits at x (or the
    remainder); intersecting: the common element stacks to exactly y."""
    if x > y:
        raise ValueError("need x <= y")
    t = max(2, math.ceil(y / x))
    last = y - (t - 1) * x
    if last <= 0:
        last = x
    elements = sorted(set().union(*instance.sets)) if instance.sets else []
    if len(elements) < 2:
        raise ValueError("instance too small")
    target = (
        instance.common_element
        if instance.common_element is not None
        else elements[0]
    )
    rest = [e for e in elements if e != target]
    no = {item: x for item in rest}
    no[target] = last  # the last player's remainder lands alone
    yes = {item: x for item in rest}
    yes[target] = y
    return _case("disj/slow-jumping-multipass", g, yes, no)
