from setuptools import find_packages, setup

setup(
    name="repro-bcwy16",
    version="1.0.0",
    description=(
        "Reproduction of Braverman-Chestnut-Woodruff-Yang (PODS 2016): "
        "streaming space complexity of nearly all functions of one variable"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
