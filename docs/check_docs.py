#!/usr/bin/env python
"""Docs CI check: the documentation must stay executable and anchored.

Two gates, run over ``docs/*.md`` and ``README.md``:

1. **Snippets execute.**  Every fenced ```` ```python ```` block is
   executed (blocks in one file share a namespace, in order, so later
   blocks may use earlier imports).  A block preceded by an HTML comment
   ``<!-- check: skip -->`` is skipped.  Any exception fails the check —
   documentation code that cannot run is documentation that lies.

2. **Anchors resolve.**  Every ``path`` or ``path:line`` reference into
   the repository (``src/...``, ``tests/...``, ``benchmarks/...``,
   ``examples/...``, ``docs/...``) must point at an existing file; a
   ``:line`` anchor must lie within the file, and — since the map anchors
   definition sites — the anchored line must actually contain a ``class``
   or ``def`` statement.  Moving code without updating PAPER_MAP.md
   therefore fails CI instead of silently rotting the map.

Usage::

    python docs/check_docs.py            # from the repository root
    python docs/check_docs.py --only-anchors
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import traceback

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

FENCE_RE = re.compile(r"^```(\w*)\s*$")
SKIP_MARKER = "<!-- check: skip -->"
ANCHOR_RE = re.compile(
    r"\b((?:src|tests|benchmarks|examples|docs)/[\w./-]+?\.\w+)(?::(\d+))?\b"
)


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """``(first_line_number, source)`` for every runnable python fence."""
    blocks = []
    lines = text.splitlines()
    i = 0
    skip_next = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARKER:
            skip_next = True
        match = FENCE_RE.match(stripped)
        if match and match.group(1) == "python":
            start = i + 2  # 1-based line number of the first source line
            body = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            if skip_next:
                skip_next = False
            else:
                blocks.append((start, "\n".join(body)))
        elif match:
            skip_next = False  # marker only applies to the very next fence
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                i += 1
        i += 1
    return blocks


def run_snippets(path: pathlib.Path) -> list[str]:
    failures = []
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    for line, source in extract_python_blocks(path.read_text()):
        try:
            code = compile(source, f"{path}:{line}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception:
            failures.append(
                f"{path.relative_to(REPO)}:{line}: snippet raised\n"
                + traceback.format_exc(limit=3)
            )
    return failures


def check_anchors(path: pathlib.Path) -> list[str]:
    failures = []
    for match in ANCHOR_RE.finditer(path.read_text()):
        target = REPO / match.group(1)
        label = f"{path.relative_to(REPO)}: anchor {match.group(0)}"
        if not target.is_file():
            failures.append(f"{label}: file does not exist")
            continue
        if match.group(2) is None:
            continue
        line_no = int(match.group(2))
        lines = target.read_text().splitlines()
        if not 1 <= line_no <= len(lines):
            failures.append(
                f"{label}: line {line_no} outside file (has {len(lines)})"
            )
            continue
        content = lines[line_no - 1]
        if target.suffix == ".py" and not re.search(r"\b(class|def)\b", content):
            failures.append(
                f"{label}: line {line_no} is not a class/def site "
                f"(found: {content.strip()[:60]!r})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only-anchors", action="store_true")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    failures = []
    for path in DOC_FILES:
        if not path.is_file():
            failures.append(f"{path}: documented file missing")
            continue
        anchor_failures = check_anchors(path)
        failures.extend(anchor_failures)
        snippet_count = len(extract_python_blocks(path.read_text()))
        if not args.only_anchors:
            snippet_failures = run_snippets(path)
            failures.extend(snippet_failures)
            status = "ok" if not snippet_failures and not anchor_failures else "FAIL"
        else:
            status = "ok" if not anchor_failures else "FAIL"
        print(
            f"{status:>5}  {path.relative_to(REPO)}: "
            f"{snippet_count} python snippet(s), anchors checked"
        )
    if failures:
        print(f"\n{len(failures)} docs check failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ndocs are executable and fully anchored")
    return 0


if __name__ == "__main__":
    sys.exit(main())
